#include "storage/table.h"

#include <algorithm>
#include <atomic>

namespace inverda {

uint64_t Table::NextEpoch() {
  static std::atomic<uint64_t> counter{0};
  return ++counter;
}

void Table::InsortKey(std::vector<int64_t>* order, int64_t key) {
  if (order->empty() || key > order->back()) {
    order->push_back(key);  // monotonic sequence keys: the common case
    return;
  }
  order->insert(std::lower_bound(order->begin(), order->end(), key), key);
}

void Table::RemoveKey(std::vector<int64_t>* order, int64_t key) {
  auto it = std::lower_bound(order->begin(), order->end(), key);
  if (it != order->end() && *it == key) order->erase(it);
}

std::vector<std::pair<int64_t, const Row*>> Table::ShardItems(
    int shard) const {
  const Bucket& bucket = buckets_[static_cast<size_t>(shard)];
  const std::vector<int64_t>& keys = order_[static_cast<size_t>(shard)];
  std::vector<std::pair<int64_t, const Row*>> items;
  items.reserve(keys.size());
  for (int64_t key : keys) {
    items.emplace_back(key, &bucket.find(key)->second);
  }
  return items;
}

std::vector<std::pair<int64_t, const Row*>> Table::SortedItems() const {
  if (shard_count() == 1) return ShardItems(0);
  std::vector<std::pair<int64_t, const Row*>> items;
  items.reserve(static_cast<size_t>(size()));
  for (int shard = 0; shard < shard_count(); ++shard) {
    const Bucket& bucket = buckets_[static_cast<size_t>(shard)];
    for (int64_t key : order_[static_cast<size_t>(shard)]) {
      items.emplace_back(key, &bucket.find(key)->second);
    }
  }
  // S sorted runs concatenated; sort merges them (cheaper than a cold
  // sort — the runs are pre-ordered — and only the sequential S>1 path
  // pays it; the parallel executor merges per-shard results itself).
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return items;
}

void Table::Reshard(int shards) {
  const int target = ClampShardCount(shards);
  if (target == shard_count()) return;
  std::vector<Bucket> next(static_cast<size_t>(target));
  for (Bucket& bucket : buckets_) {
    for (auto& [key, row] : bucket) {
      next[static_cast<size_t>(ShardOf(key, target))].emplace(
          key, std::move(row));
    }
  }
  buckets_ = std::move(next);
  order_.assign(static_cast<size_t>(target), {});
  for (size_t shard = 0; shard < buckets_.size(); ++shard) {
    std::vector<int64_t>& keys = order_[shard];
    keys.reserve(buckets_[shard].size());
    for (const auto& [key, row] : buckets_[shard]) {
      (void)row;
      keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());
  }
  Touch();
}

const Row* Table::Find(int64_t key) const {
  const Bucket& bucket = BucketFor(key);
  auto it = bucket.find(key);
  return it == bucket.end() ? nullptr : &it->second;
}

Status Table::Insert(int64_t key, Row row) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::ConstraintViolation(
        "row width " + std::to_string(row.size()) + " does not match schema " +
        schema_.ToString());
  }
  auto [it, inserted] = BucketFor(key).emplace(key, std::move(row));
  (void)it;
  if (!inserted) {
    return Status::ConstraintViolation("duplicate key " + std::to_string(key) +
                                       " in " + schema_.name());
  }
  size_.fetch_add(1, std::memory_order_acq_rel);
  InsortKey(&OrderFor(key), key);
  Touch();
  return Status::OK();
}

Status Table::Update(int64_t key, Row row) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::ConstraintViolation(
        "row width " + std::to_string(row.size()) + " does not match schema " +
        schema_.ToString());
  }
  Bucket& bucket = BucketFor(key);
  auto it = bucket.find(key);
  if (it == bucket.end()) {
    return Status::NotFound("key " + std::to_string(key) + " not in " +
                            schema_.name());
  }
  it->second = std::move(row);
  Touch();
  return Status::OK();
}

Status Table::Upsert(int64_t key, Row row) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::ConstraintViolation(
        "row width " + std::to_string(row.size()) + " does not match schema " +
        schema_.ToString());
  }
  Bucket& bucket = BucketFor(key);
  auto [it, inserted] = bucket.insert_or_assign(key, std::move(row));
  (void)it;
  if (inserted) {
    size_.fetch_add(1, std::memory_order_acq_rel);
    InsortKey(&OrderFor(key), key);
  }
  Touch();
  return Status::OK();
}

bool Table::Erase(int64_t key) {
  if (BucketFor(key).erase(key) == 0) return false;
  size_.fetch_sub(1, std::memory_order_acq_rel);
  RemoveKey(&OrderFor(key), key);
  Touch();
  return true;
}

void Table::Clear() {
  for (Bucket& bucket : buckets_) bucket.clear();
  for (std::vector<int64_t>& keys : order_) keys.clear();
  size_.store(0, std::memory_order_release);
  Touch();
}

void Table::Scan(const std::function<void(int64_t, const Row&)>& fn) const {
  if (shard_count() == 1) {
    const Bucket& bucket = buckets_[0];
    for (int64_t key : order_[0]) fn(key, bucket.find(key)->second);
    return;
  }
  for (const auto& [key, row] : SortedItems()) fn(key, *row);
}

std::vector<KeyedRow> Table::Rows() const {
  std::vector<KeyedRow> out;
  out.reserve(static_cast<size_t>(size()));
  for (const auto& [key, row] : SortedItems()) out.push_back({key, *row});
  return out;
}

std::vector<int64_t> Table::Keys() const {
  if (shard_count() == 1) return order_[0];
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(size()));
  for (const std::vector<int64_t>& keys : order_) {
    out.insert(out.end(), keys.begin(), keys.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool Table::ContentEquals(const Table& other) const {
  if (!(schema_ == other.schema_)) return false;
  if (size() != other.size()) return false;
  for (const Bucket& bucket : buckets_) {
    for (const auto& [key, row] : bucket) {
      const Row* theirs = other.Find(key);
      if (theirs == nullptr || !RowsEqual(row, *theirs)) return false;
    }
  }
  return true;
}

std::string Table::ToString() const {
  std::string out = schema_.ToString() + " [" + std::to_string(size()) +
                    " rows]\n";
  for (const auto& [key, row] : SortedItems()) {
    out += "  p=" + std::to_string(key) + " " + RowToString(*row) + "\n";
  }
  return out;
}

}  // namespace inverda
