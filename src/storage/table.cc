#include "storage/table.h"

#include <atomic>

namespace inverda {

uint64_t Table::NextEpoch() {
  static std::atomic<uint64_t> counter{0};
  return ++counter;
}

const Row* Table::Find(int64_t key) const {
  auto it = rows_.find(key);
  return it == rows_.end() ? nullptr : &it->second;
}

Status Table::Insert(int64_t key, Row row) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::ConstraintViolation(
        "row width " + std::to_string(row.size()) + " does not match schema " +
        schema_.ToString());
  }
  auto [it, inserted] = rows_.emplace(key, std::move(row));
  (void)it;
  if (!inserted) {
    return Status::ConstraintViolation("duplicate key " + std::to_string(key) +
                                       " in " + schema_.name());
  }
  Touch();
  return Status::OK();
}

Status Table::Update(int64_t key, Row row) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::ConstraintViolation(
        "row width " + std::to_string(row.size()) + " does not match schema " +
        schema_.ToString());
  }
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    return Status::NotFound("key " + std::to_string(key) + " not in " +
                            schema_.name());
  }
  it->second = std::move(row);
  Touch();
  return Status::OK();
}

Status Table::Upsert(int64_t key, Row row) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::ConstraintViolation(
        "row width " + std::to_string(row.size()) + " does not match schema " +
        schema_.ToString());
  }
  rows_[key] = std::move(row);
  Touch();
  return Status::OK();
}

bool Table::Erase(int64_t key) {
  if (rows_.erase(key) == 0) return false;
  Touch();
  return true;
}

void Table::Scan(const std::function<void(int64_t, const Row&)>& fn) const {
  for (const auto& [key, row] : rows_) fn(key, row);
}

std::vector<KeyedRow> Table::Rows() const {
  std::vector<KeyedRow> out;
  out.reserve(rows_.size());
  for (const auto& [key, row] : rows_) out.push_back({key, row});
  return out;
}

std::vector<int64_t> Table::Keys() const {
  std::vector<int64_t> out;
  out.reserve(rows_.size());
  for (const auto& [key, row] : rows_) {
    (void)row;
    out.push_back(key);
  }
  return out;
}

bool Table::ContentEquals(const Table& other) const {
  if (!(schema_ == other.schema_)) return false;
  if (rows_.size() != other.rows_.size()) return false;
  auto it = rows_.begin();
  auto jt = other.rows_.begin();
  for (; it != rows_.end(); ++it, ++jt) {
    if (it->first != jt->first || !RowsEqual(it->second, jt->second)) {
      return false;
    }
  }
  return true;
}

std::string Table::ToString() const {
  std::string out = schema_.ToString() + " [" + std::to_string(size()) +
                    " rows]\n";
  for (const auto& [key, row] : rows_) {
    out += "  p=" + std::to_string(key) + " " + RowToString(row) + "\n";
  }
  return out;
}

}  // namespace inverda
