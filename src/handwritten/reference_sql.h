#ifndef INVERDA_HANDWRITTEN_REFERENCE_SQL_H_
#define INVERDA_HANDWRITTEN_REFERENCE_SQL_H_

#include <string>

namespace inverda {

/// The handwritten SQL scripts a developer would write to keep the TasKy
/// and TasKy2 schema versions co-existing without InVerDa, and the BiDEL
/// scripts that achieve the same. Used by the Table 3 code-size experiment
/// and as documentation of what InVerDa automates.

/// CREATE TABLE Task(...) — identical effort in both worlds.
const std::string& HandwrittenInitialSql();

/// Views + triggers implementing TasKy2 on top of the TasKy physical
/// schema (forward and backward write propagation, auxiliary bookkeeping).
const std::string& HandwrittenEvolutionSql();

/// Physical migration of the data to the TasKy2 table schema plus the
/// rewritten delta code that re-exposes TasKy afterwards.
const std::string& HandwrittenMigrationSql();

/// BiDEL equivalents (Figure 1 of the paper).
const std::string& BidelInitialScript();
const std::string& BidelEvolutionScript();
const std::string& BidelMigrationScript();
const std::string& BidelDoScript();

}  // namespace inverda

#endif  // INVERDA_HANDWRITTEN_REFERENCE_SQL_H_
