#ifndef INVERDA_HANDWRITTEN_TASKY_HANDWRITTEN_H_
#define INVERDA_HANDWRITTEN_TASKY_HANDWRITTEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/database.h"
#include "util/status.h"

namespace inverda {

/// The hand-optimized delta-code baseline of the Figure 8 experiment: a
/// developer-written implementation of the co-existing TasKy / TasKy2 / Do!
/// schema versions, specialized to one fixed materialization. It plays the
/// role of the handwritten SQL views/triggers the paper compares against;
/// here it is hand-coded C++ against the same storage substrate.
class HandwrittenTasky {
 public:
  enum class Materialization { kTasKy, kTasKy2 };

  /// One row as seen through the TasKy schema: Task(author, task, prio).
  struct TaskRow {
    int64_t p = 0;
    std::string author;
    std::string task;
    int64_t prio = 0;
  };

  explicit HandwrittenTasky(Materialization materialization);

  Materialization materialization() const { return materialization_; }

  /// Bulk load through the TasKy schema.
  Status Load(const std::vector<TaskRow>& rows);

  // --- reads -----------------------------------------------------------------

  /// SELECT * through TasKy: Task(author, task, prio).
  Result<std::vector<TaskRow>> ReadTasKy() const;

  /// SELECT * through TasKy2: Task(task, prio, author-fk) joined flat for
  /// comparison purposes (task, prio, author name).
  Result<std::vector<TaskRow>> ReadTasKy2() const;

  /// SELECT * through Do!: Todo(author, task), prio = 1 only.
  Result<std::vector<TaskRow>> ReadDo() const;

  // --- writes ----------------------------------------------------------------

  Result<int64_t> InsertTasKy(const std::string& author,
                              const std::string& task, int64_t prio);
  Result<int64_t> InsertTasKy2(const std::string& task, int64_t prio,
                               const std::string& author_name);
  Result<int64_t> InsertDo(const std::string& author, const std::string& task);

  Status UpdateTasKyPrio(int64_t p, int64_t prio);
  Status DeleteTasKy(int64_t p);

  /// Hand-written equivalent of MATERIALIZE 'TasKy2' (and back): moves the
  /// data between the two physical layouts.
  Status MigrateTo(Materialization target);

  int64_t TaskCount() const;

 private:
  Result<int64_t> AuthorIdFor(const std::string& name);

  Materialization materialization_;
  Database db_;
};

}  // namespace inverda

#endif  // INVERDA_HANDWRITTEN_TASKY_HANDWRITTEN_H_
