#include "handwritten/reference_sql.h"

namespace inverda {

// All scripts below are written for this repository as the "handwritten
// delta code" baseline of the Table 3 experiment: the code a developer
// would have to write and maintain by hand to keep TasKy, Do! and TasKy2
// co-existing on one data set without InVerDa.

const std::string& HandwrittenInitialSql() {
  static const std::string* sql = new std::string(R"SQL(
CREATE TABLE task(p BIGSERIAL PRIMARY KEY, author TEXT, task TEXT, prio INT);
)SQL");
  return *sql;
}

const std::string& HandwrittenEvolutionSql() {
  static const std::string* sql = new std::string(R"SQL(
-- =========================================================================
-- Handwritten delta code: expose TasKy2 (task2 / author2) and Do! (todo)
-- on top of the physically stored TasKy table task(p, author, task, prio).
-- =========================================================================

-- Auxiliary state ---------------------------------------------------------
-- Assigned author ids for the decomposition (must stay stable so that the
-- TasKy2 schema sees repeatable author keys).
CREATE SEQUENCE author_id_seq START 1000000;
CREATE TABLE aux_author_ids(
  p BIGINT PRIMARY KEY,
  author_id BIGINT NOT NULL
);
-- Explicit priorities written through Do! after the prio column was
-- dropped there (default is 1).
CREATE TABLE aux_todo_prio(
  p BIGINT PRIMARY KEY,
  prio INT NOT NULL
);

-- Helper: stable author id per author name -------------------------------
CREATE OR REPLACE FUNCTION author_id_for(name TEXT) RETURNS BIGINT AS $$
DECLARE
  result BIGINT;
BEGIN
  SELECT a.author_id INTO result
  FROM aux_author_ids a JOIN task t ON t.p = a.p
  WHERE t.author = name
  LIMIT 1;
  IF result IS NULL THEN
    result := nextval('author_id_seq');
  END IF;
  RETURN result;
END;
$$ LANGUAGE plpgsql;

-- TasKy2 views ------------------------------------------------------------
CREATE OR REPLACE VIEW author2 AS
  SELECT DISTINCT a.author_id AS p, t.author AS name
  FROM task t JOIN aux_author_ids a ON a.p = t.p;

CREATE OR REPLACE VIEW task2 AS
  SELECT t.p, t.task, t.prio, a.author_id AS author
  FROM task t JOIN aux_author_ids a ON a.p = t.p;

-- Do! view ------------------------------------------------------------------
CREATE OR REPLACE VIEW todo AS
  SELECT t.p, t.author, t.task
  FROM task t
  WHERE t.prio = 1;

-- Keep aux_author_ids complete for every physical row ----------------------
CREATE OR REPLACE FUNCTION task_assign_author_id() RETURNS trigger AS $$
BEGIN
  INSERT INTO aux_author_ids(p, author_id)
  VALUES (NEW.p, author_id_for(NEW.author))
  ON CONFLICT (p) DO UPDATE SET author_id = author_id_for(NEW.author);
  RETURN NEW;
END;
$$ LANGUAGE plpgsql;
CREATE TRIGGER task_author_id AFTER INSERT OR UPDATE ON task
  FOR EACH ROW EXECUTE FUNCTION task_assign_author_id();
CREATE OR REPLACE FUNCTION task_drop_author_id() RETURNS trigger AS $$
BEGIN
  DELETE FROM aux_author_ids WHERE p = OLD.p;
  DELETE FROM aux_todo_prio WHERE p = OLD.p;
  RETURN OLD;
END;
$$ LANGUAGE plpgsql;
CREATE TRIGGER task_author_id_gc AFTER DELETE ON task
  FOR EACH ROW EXECUTE FUNCTION task_drop_author_id();

-- Write propagation: TasKy2.task2 -> task -----------------------------------
CREATE OR REPLACE FUNCTION task2_insert() RETURNS trigger AS $$
DECLARE
  author_name TEXT;
BEGIN
  SELECT name INTO author_name FROM author2 WHERE p = NEW.author;
  IF author_name IS NULL THEN
    RAISE EXCEPTION 'dangling author id %', NEW.author;
  END IF;
  INSERT INTO task(p, author, task, prio)
  VALUES (NEW.p, author_name, NEW.task, NEW.prio);
  INSERT INTO aux_author_ids(p, author_id) VALUES (NEW.p, NEW.author)
  ON CONFLICT (p) DO UPDATE SET author_id = NEW.author;
  RETURN NEW;
END;
$$ LANGUAGE plpgsql;
CREATE TRIGGER task2_ins INSTEAD OF INSERT ON task2
  FOR EACH ROW EXECUTE FUNCTION task2_insert();

CREATE OR REPLACE FUNCTION task2_update() RETURNS trigger AS $$
DECLARE
  author_name TEXT;
BEGIN
  SELECT name INTO author_name FROM author2 WHERE p = NEW.author;
  UPDATE task
  SET author = author_name, task = NEW.task, prio = NEW.prio
  WHERE p = OLD.p;
  UPDATE aux_author_ids SET author_id = NEW.author WHERE p = OLD.p;
  RETURN NEW;
END;
$$ LANGUAGE plpgsql;
CREATE TRIGGER task2_upd INSTEAD OF UPDATE ON task2
  FOR EACH ROW EXECUTE FUNCTION task2_update();

CREATE OR REPLACE FUNCTION task2_delete() RETURNS trigger AS $$
BEGIN
  DELETE FROM task WHERE p = OLD.p;
  RETURN OLD;
END;
$$ LANGUAGE plpgsql;
CREATE TRIGGER task2_del INSTEAD OF DELETE ON task2
  FOR EACH ROW EXECUTE FUNCTION task2_delete();

-- Write propagation: TasKy2.author2 -> task ----------------------------------
CREATE OR REPLACE FUNCTION author2_update() RETURNS trigger AS $$
BEGIN
  UPDATE task t
  SET author = NEW.name
  FROM aux_author_ids a
  WHERE a.p = t.p AND a.author_id = OLD.p;
  RETURN NEW;
END;
$$ LANGUAGE plpgsql;
CREATE TRIGGER author2_upd INSTEAD OF UPDATE ON author2
  FOR EACH ROW EXECUTE FUNCTION author2_update();

CREATE OR REPLACE FUNCTION author2_delete() RETURNS trigger AS $$
BEGIN
  DELETE FROM task t
  USING aux_author_ids a
  WHERE a.p = t.p AND a.author_id = OLD.p;
  RETURN OLD;
END;
$$ LANGUAGE plpgsql;
CREATE TRIGGER author2_del INSTEAD OF DELETE ON author2
  FOR EACH ROW EXECUTE FUNCTION author2_delete();

-- Write propagation: Do!.todo -> task -----------------------------------------
CREATE OR REPLACE FUNCTION todo_insert() RETURNS trigger AS $$
BEGIN
  INSERT INTO task(p, author, task, prio)
  VALUES (NEW.p, NEW.author, NEW.task,
          COALESCE((SELECT prio FROM aux_todo_prio WHERE p = NEW.p), 1));
  RETURN NEW;
END;
$$ LANGUAGE plpgsql;
CREATE TRIGGER todo_ins INSTEAD OF INSERT ON todo
  FOR EACH ROW EXECUTE FUNCTION todo_insert();

CREATE OR REPLACE FUNCTION todo_update() RETURNS trigger AS $$
BEGIN
  UPDATE task SET author = NEW.author, task = NEW.task WHERE p = OLD.p;
  RETURN NEW;
END;
$$ LANGUAGE plpgsql;
CREATE TRIGGER todo_upd INSTEAD OF UPDATE ON todo
  FOR EACH ROW EXECUTE FUNCTION todo_update();

CREATE OR REPLACE FUNCTION todo_delete() RETURNS trigger AS $$
BEGIN
  DELETE FROM task WHERE p = OLD.p;
  RETURN OLD;
END;
$$ LANGUAGE plpgsql;
CREATE TRIGGER todo_del INSTEAD OF DELETE ON todo
  FOR EACH ROW EXECUTE FUNCTION todo_delete();

-- Populate the author id assignment for pre-existing rows --------------------
INSERT INTO aux_author_ids(p, author_id)
SELECT t.p, author_id_for(t.author) FROM task t
ON CONFLICT (p) DO NOTHING;
)SQL");
  return *sql;
}

const std::string& HandwrittenMigrationSql() {
  static const std::string* sql = new std::string(R"SQL(
-- =========================================================================
-- Handwritten migration: physically move the data to the TasKy2 schema
-- (task2d / author2d) and rewrite ALL delta code so TasKy and Do! keep
-- working on top of the new physical tables.
-- =========================================================================

BEGIN;

-- New physical tables ---------------------------------------------------------
CREATE TABLE author2d(p BIGINT PRIMARY KEY, name TEXT);
CREATE TABLE task2d(
  p BIGINT PRIMARY KEY,
  task TEXT,
  prio INT,
  author BIGINT REFERENCES author2d(p)
);

-- Move the data ---------------------------------------------------------------
INSERT INTO author2d(p, name)
SELECT DISTINCT a.author_id, t.author
FROM task t JOIN aux_author_ids a ON a.p = t.p;

INSERT INTO task2d(p, task, prio, author)
SELECT t.p, t.task, t.prio, a.author_id
FROM task t JOIN aux_author_ids a ON a.p = t.p;

-- Tear down the old delta code --------------------------------------------------
DROP TRIGGER task2_ins ON task2;  DROP FUNCTION task2_insert();
DROP TRIGGER task2_upd ON task2;  DROP FUNCTION task2_update();
DROP TRIGGER task2_del ON task2;  DROP FUNCTION task2_delete();
DROP TRIGGER author2_upd ON author2;  DROP FUNCTION author2_update();
DROP TRIGGER author2_del ON author2;  DROP FUNCTION author2_delete();
DROP TRIGGER todo_ins ON todo;  DROP FUNCTION todo_insert();
DROP TRIGGER todo_upd ON todo;  DROP FUNCTION todo_update();
DROP TRIGGER todo_del ON todo;  DROP FUNCTION todo_delete();
DROP TRIGGER task_author_id ON task;  DROP FUNCTION task_assign_author_id();
DROP TRIGGER task_author_id_gc ON task;  DROP FUNCTION task_drop_author_id();
DROP VIEW task2;  DROP VIEW author2;  DROP VIEW todo;
DROP TABLE task;  DROP TABLE aux_author_ids;

-- New views: TasKy2 is physical now -------------------------------------------
CREATE OR REPLACE VIEW task2 AS SELECT p, task, prio, author FROM task2d;
CREATE OR REPLACE VIEW author2 AS SELECT p, name FROM author2d;

CREATE OR REPLACE VIEW task AS
  SELECT t.p, a.name AS author, t.task, t.prio
  FROM task2d t JOIN author2d a ON a.p = t.author;

CREATE OR REPLACE VIEW todo AS
  SELECT t.p, a.name AS author, t.task
  FROM task2d t JOIN author2d a ON a.p = t.author
  WHERE t.prio = 1;

-- Rewritten write propagation: TasKy.task -> task2d/author2d -------------------
CREATE OR REPLACE FUNCTION task_v1_insert() RETURNS trigger AS $$
DECLARE
  aid BIGINT;
BEGIN
  SELECT p INTO aid FROM author2d WHERE name = NEW.author LIMIT 1;
  IF aid IS NULL THEN
    aid := nextval('author_id_seq');
    INSERT INTO author2d(p, name) VALUES (aid, NEW.author);
  END IF;
  INSERT INTO task2d(p, task, prio, author)
  VALUES (NEW.p, NEW.task, NEW.prio, aid);
  RETURN NEW;
END;
$$ LANGUAGE plpgsql;
CREATE TRIGGER task_v1_ins INSTEAD OF INSERT ON task
  FOR EACH ROW EXECUTE FUNCTION task_v1_insert();

CREATE OR REPLACE FUNCTION task_v1_update() RETURNS trigger AS $$
DECLARE
  aid BIGINT;
BEGIN
  SELECT p INTO aid FROM author2d WHERE name = NEW.author LIMIT 1;
  IF aid IS NULL THEN
    aid := nextval('author_id_seq');
    INSERT INTO author2d(p, name) VALUES (aid, NEW.author);
  END IF;
  UPDATE task2d SET task = NEW.task, prio = NEW.prio, author = aid
  WHERE p = OLD.p;
  DELETE FROM author2d a
  WHERE NOT EXISTS (SELECT 1 FROM task2d t WHERE t.author = a.p);
  RETURN NEW;
END;
$$ LANGUAGE plpgsql;
CREATE TRIGGER task_v1_upd INSTEAD OF UPDATE ON task
  FOR EACH ROW EXECUTE FUNCTION task_v1_update();

CREATE OR REPLACE FUNCTION task_v1_delete() RETURNS trigger AS $$
BEGIN
  DELETE FROM task2d WHERE p = OLD.p;
  DELETE FROM author2d a
  WHERE NOT EXISTS (SELECT 1 FROM task2d t WHERE t.author = a.p);
  RETURN OLD;
END;
$$ LANGUAGE plpgsql;
CREATE TRIGGER task_v1_del INSTEAD OF DELETE ON task
  FOR EACH ROW EXECUTE FUNCTION task_v1_delete();

-- Rewritten write propagation: Do!.todo -> task2d/author2d ----------------------
CREATE OR REPLACE FUNCTION todo_v2_insert() RETURNS trigger AS $$
DECLARE
  aid BIGINT;
BEGIN
  SELECT p INTO aid FROM author2d WHERE name = NEW.author LIMIT 1;
  IF aid IS NULL THEN
    aid := nextval('author_id_seq');
    INSERT INTO author2d(p, name) VALUES (aid, NEW.author);
  END IF;
  INSERT INTO task2d(p, task, prio, author)
  VALUES (NEW.p, NEW.task,
          COALESCE((SELECT prio FROM aux_todo_prio WHERE p = NEW.p), 1), aid);
  RETURN NEW;
END;
$$ LANGUAGE plpgsql;
CREATE TRIGGER todo_v2_ins INSTEAD OF INSERT ON todo
  FOR EACH ROW EXECUTE FUNCTION todo_v2_insert();

CREATE OR REPLACE FUNCTION todo_v2_update() RETURNS trigger AS $$
DECLARE
  aid BIGINT;
BEGIN
  SELECT p INTO aid FROM author2d WHERE name = NEW.author LIMIT 1;
  IF aid IS NULL THEN
    aid := nextval('author_id_seq');
    INSERT INTO author2d(p, name) VALUES (aid, NEW.author);
  END IF;
  UPDATE task2d SET task = NEW.task, author = aid WHERE p = OLD.p;
  RETURN NEW;
END;
$$ LANGUAGE plpgsql;
CREATE TRIGGER todo_v2_upd INSTEAD OF UPDATE ON todo
  FOR EACH ROW EXECUTE FUNCTION todo_v2_update();

CREATE OR REPLACE FUNCTION todo_v2_delete() RETURNS trigger AS $$
BEGIN
  DELETE FROM task2d WHERE p = OLD.p;
  RETURN OLD;
END;
$$ LANGUAGE plpgsql;
CREATE TRIGGER todo_v2_del INSTEAD OF DELETE ON todo
  FOR EACH ROW EXECUTE FUNCTION todo_v2_delete();

COMMIT;
)SQL");
  return *sql;
}

const std::string& BidelInitialScript() {
  static const std::string* s = new std::string(
      "CREATE SCHEMA VERSION TasKy WITH CREATE TABLE Task(author TEXT, task "
      "TEXT, prio INT);");
  return *s;
}

const std::string& BidelEvolutionScript() {
  static const std::string* s = new std::string(
      "CREATE SCHEMA VERSION TasKy2 FROM TasKy WITH\n"
      "DECOMPOSE TABLE Task INTO Task(task, prio), Author(author) ON FOREIGN "
      "KEY author;\n"
      "RENAME COLUMN author IN Author TO name;");
  return *s;
}

const std::string& BidelMigrationScript() {
  static const std::string* s = new std::string("MATERIALIZE 'TasKy2';");
  return *s;
}

const std::string& BidelDoScript() {
  static const std::string* s = new std::string(
      "CREATE SCHEMA VERSION Do! FROM TasKy WITH\n"
      "SPLIT TABLE Task INTO Todo WITH prio = 1;\n"
      "DROP COLUMN prio FROM Todo DEFAULT 1;");
  return *s;
}

}  // namespace inverda
