#include "handwritten/tasky_handwritten.h"

namespace inverda {
namespace {

TableSchema TaskSchema() {
  return TableSchema("task", {{"author", DataType::kString},
                              {"task", DataType::kString},
                              {"prio", DataType::kInt64}});
}

TableSchema Task2Schema() {
  return TableSchema("task2", {{"task", DataType::kString},
                               {"prio", DataType::kInt64},
                               {"author", DataType::kInt64}});
}

TableSchema Author2Schema() {
  return TableSchema("author2", {{"name", DataType::kString}});
}

}  // namespace

HandwrittenTasky::HandwrittenTasky(Materialization materialization)
    : materialization_(materialization) {
  if (materialization_ == Materialization::kTasKy) {
    (void)db_.CreateTable(TaskSchema());
  } else {
    (void)db_.CreateTable(Task2Schema());
    (void)db_.CreateTable(Author2Schema());
  }
}

Result<int64_t> HandwrittenTasky::AuthorIdFor(const std::string& name) {
  INVERDA_ASSIGN_OR_RETURN(Table * authors, db_.GetTable("author2"));
  int64_t found = -1;
  authors->Scan([&](int64_t key, const Row& row) {
    if (found < 0 && row[0].is_string() && row[0].AsString() == name) {
      found = key;
    }
  });
  if (found >= 0) return found;
  int64_t id = db_.sequence().Next();
  INVERDA_RETURN_IF_ERROR(authors->Insert(id, {Value::String(name)}));
  return id;
}

Status HandwrittenTasky::Load(const std::vector<TaskRow>& rows) {
  for (const TaskRow& row : rows) {
    INVERDA_ASSIGN_OR_RETURN(int64_t key,
                             InsertTasKy(row.author, row.task, row.prio));
    (void)key;
  }
  return Status::OK();
}

Result<std::vector<HandwrittenTasky::TaskRow>> HandwrittenTasky::ReadTasKy()
    const {
  std::vector<TaskRow> out;
  if (materialization_ == Materialization::kTasKy) {
    INVERDA_ASSIGN_OR_RETURN(const Table* task, db_.GetTableConst("task"));
    out.reserve(static_cast<size_t>(task->size()));
    task->Scan([&](int64_t key, const Row& row) {
      out.push_back({key, row[0].AsString(), row[1].AsString(),
                     row[2].AsInt()});
    });
    return out;
  }
  // Evolved materialization: join task2 with author2 by hand.
  INVERDA_ASSIGN_OR_RETURN(const Table* task2, db_.GetTableConst("task2"));
  INVERDA_ASSIGN_OR_RETURN(const Table* author2, db_.GetTableConst("author2"));
  std::map<int64_t, std::string> names;
  author2->Scan([&](int64_t key, const Row& row) {
    names[key] = row[0].AsString();
  });
  out.reserve(static_cast<size_t>(task2->size()));
  task2->Scan([&](int64_t key, const Row& row) {
    auto it = names.find(row[2].AsInt());
    out.push_back({key, it == names.end() ? std::string() : it->second,
                   row[0].AsString(), row[1].AsInt()});
  });
  return out;
}

Result<std::vector<HandwrittenTasky::TaskRow>> HandwrittenTasky::ReadTasKy2()
    const {
  std::vector<TaskRow> out;
  if (materialization_ == Materialization::kTasKy2) {
    INVERDA_ASSIGN_OR_RETURN(const Table* task2, db_.GetTableConst("task2"));
    INVERDA_ASSIGN_OR_RETURN(const Table* author2,
                             db_.GetTableConst("author2"));
    std::map<int64_t, std::string> names;
    author2->Scan([&](int64_t key, const Row& row) {
      names[key] = row[0].AsString();
    });
    out.reserve(static_cast<size_t>(task2->size()));
    task2->Scan([&](int64_t key, const Row& row) {
      auto it = names.find(row[2].AsInt());
      out.push_back({key, it == names.end() ? std::string() : it->second,
                     row[0].AsString(), row[1].AsInt()});
    });
    return out;
  }
  // Initial materialization: derive the decomposition from task on the fly,
  // with stable author ids assigned by name order (the handwritten
  // equivalent of the aux id table).
  INVERDA_ASSIGN_OR_RETURN(const Table* task, db_.GetTableConst("task"));
  std::map<std::string, int64_t> author_ids;
  task->Scan([&](int64_t key, const Row& row) {
    (void)key;
    author_ids.emplace(row[0].AsString(), 0);
  });
  int64_t next = 1;
  for (auto& [name, id] : author_ids) {
    (void)name;
    id = next++;
  }
  out.reserve(static_cast<size_t>(task->size()));
  task->Scan([&](int64_t key, const Row& row) {
    out.push_back({key, row[0].AsString(), row[1].AsString(),
                   row[2].AsInt()});
  });
  return out;
}

Result<std::vector<HandwrittenTasky::TaskRow>> HandwrittenTasky::ReadDo()
    const {
  INVERDA_ASSIGN_OR_RETURN(std::vector<TaskRow> all, ReadTasKy());
  std::vector<TaskRow> out;
  for (TaskRow& row : all) {
    if (row.prio == 1) out.push_back(std::move(row));
  }
  return out;
}

Result<int64_t> HandwrittenTasky::InsertTasKy(const std::string& author,
                                              const std::string& task,
                                              int64_t prio) {
  int64_t key = db_.sequence().Next();
  if (materialization_ == Materialization::kTasKy) {
    INVERDA_ASSIGN_OR_RETURN(Table * t, db_.GetTable("task"));
    INVERDA_RETURN_IF_ERROR(t->Insert(
        key,
        {Value::String(author), Value::String(task), Value::Int(prio)}));
    return key;
  }
  INVERDA_ASSIGN_OR_RETURN(int64_t author_id, AuthorIdFor(author));
  INVERDA_ASSIGN_OR_RETURN(Table * t2, db_.GetTable("task2"));
  INVERDA_RETURN_IF_ERROR(t2->Insert(
      key, {Value::String(task), Value::Int(prio), Value::Int(author_id)}));
  return key;
}

Result<int64_t> HandwrittenTasky::InsertTasKy2(const std::string& task,
                                               int64_t prio,
                                               const std::string& author_name) {
  return InsertTasKy(author_name, task, prio);
}

Result<int64_t> HandwrittenTasky::InsertDo(const std::string& author,
                                           const std::string& task) {
  return InsertTasKy(author, task, /*prio=*/1);
}

Status HandwrittenTasky::UpdateTasKyPrio(int64_t p, int64_t prio) {
  if (materialization_ == Materialization::kTasKy) {
    INVERDA_ASSIGN_OR_RETURN(Table * t, db_.GetTable("task"));
    const Row* row = t->Find(p);
    if (row == nullptr) return Status::OK();
    Row updated = *row;
    updated[2] = Value::Int(prio);
    return t->Update(p, std::move(updated));
  }
  INVERDA_ASSIGN_OR_RETURN(Table * t2, db_.GetTable("task2"));
  const Row* row = t2->Find(p);
  if (row == nullptr) return Status::OK();
  Row updated = *row;
  updated[1] = Value::Int(prio);
  return t2->Update(p, std::move(updated));
}

Status HandwrittenTasky::DeleteTasKy(int64_t p) {
  if (materialization_ == Materialization::kTasKy) {
    INVERDA_ASSIGN_OR_RETURN(Table * t, db_.GetTable("task"));
    t->Erase(p);
    return Status::OK();
  }
  INVERDA_ASSIGN_OR_RETURN(Table * t2, db_.GetTable("task2"));
  const Row* row = t2->Find(p);
  if (row == nullptr) return Status::OK();
  int64_t author_id = (*row)[2].AsInt();
  t2->Erase(p);
  // Garbage-collect authors without tasks, as the handwritten trigger does.
  bool referenced = false;
  t2->Scan([&](int64_t key, const Row& r) {
    (void)key;
    if (r[2].AsInt() == author_id) referenced = true;
  });
  if (!referenced) {
    INVERDA_ASSIGN_OR_RETURN(Table * authors, db_.GetTable("author2"));
    authors->Erase(author_id);
  }
  return Status::OK();
}

Status HandwrittenTasky::MigrateTo(Materialization target) {
  if (target == materialization_) return Status::OK();
  INVERDA_ASSIGN_OR_RETURN(std::vector<TaskRow> rows, ReadTasKy());
  if (target == Materialization::kTasKy) {
    INVERDA_RETURN_IF_ERROR(db_.DropTable("task2"));
    INVERDA_RETURN_IF_ERROR(db_.DropTable("author2"));
    INVERDA_RETURN_IF_ERROR(db_.CreateTable(TaskSchema()));
    materialization_ = target;
    INVERDA_ASSIGN_OR_RETURN(Table * t, db_.GetTable("task"));
    for (const TaskRow& row : rows) {
      INVERDA_RETURN_IF_ERROR(
          t->Insert(row.p, {Value::String(row.author), Value::String(row.task),
                            Value::Int(row.prio)}));
    }
    return Status::OK();
  }
  INVERDA_RETURN_IF_ERROR(db_.DropTable("task"));
  INVERDA_RETURN_IF_ERROR(db_.CreateTable(Task2Schema()));
  INVERDA_RETURN_IF_ERROR(db_.CreateTable(Author2Schema()));
  materialization_ = target;
  for (const TaskRow& row : rows) {
    INVERDA_ASSIGN_OR_RETURN(int64_t author_id, AuthorIdFor(row.author));
    INVERDA_ASSIGN_OR_RETURN(Table * t2, db_.GetTable("task2"));
    INVERDA_RETURN_IF_ERROR(
        t2->Insert(row.p, {Value::String(row.task), Value::Int(row.prio),
                           Value::Int(author_id)}));
  }
  return Status::OK();
}

int64_t HandwrittenTasky::TaskCount() const {
  Result<const Table*> t =
      db_.GetTableConst(materialization_ == Materialization::kTasKy
                            ? "task"
                            : "task2");
  return t.ok() ? (*t)->size() : 0;
}

}  // namespace inverda
