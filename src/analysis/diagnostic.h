#ifndef INVERDA_ANALYSIS_DIAGNOSTIC_H_
#define INVERDA_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <vector>

#include "bidel/source_span.h"
#include "util/status.h"

namespace inverda {

/// Severity of a lint finding. Errors reject the script at the Evolve gate;
/// warnings and notes are recorded on the created schema version.
enum class DiagSeverity {
  kError,
  kWarning,
  kNote,
};

const char* DiagSeverityName(DiagSeverity severity);

/// One structured lint finding. `rule` is a stable kebab-case id (see
/// docs/diagnostics.md for the catalogue); `span` points into the analyzed
/// script and is empty for statements built programmatically.
struct Diagnostic {
  std::string rule;
  DiagSeverity severity = DiagSeverity::kError;
  SourceSpan span;
  std::string message;
  std::string fixit;  ///< optional suggested remedy, empty when none
};

/// The outcome of analyzing a script or a single evolution statement.
struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;

  bool has_errors() const;
  size_t CountOf(DiagSeverity severity) const;
  const Diagnostic* FirstError() const;
};

/// "error[rule] at 3:14: message" plus a caret snippet and fix-it line when
/// `script` is non-empty and the span points into it.
std::string FormatDiagnostic(const Diagnostic& d, const std::string& script);

/// Every diagnostic formatted, followed by a one-line summary.
std::string FormatReport(const AnalysisReport& report,
                         const std::string& script);

/// Machine-readable rendering: a JSON object with a "diagnostics" array
/// (rule, severity, message, fixit, span offsets and line/column) and
/// error/warning/note counts.
std::string ReportToJson(const AnalysisReport& report,
                         const std::string& script);

/// The status code Inverda::Evolve rejects an error diagnostic with:
/// unknown-* and dangling-source-version map to NotFound, duplicate-* and
/// collision rules to AlreadyExists, everything else to InvalidArgument.
StatusCode DiagnosticStatusCode(const Diagnostic& d);

/// OK when the report has no errors; otherwise the first error converted
/// via DiagnosticStatusCode with a "[rule] message" text.
Status ReportToStatus(const AnalysisReport& report);

}  // namespace inverda

#endif  // INVERDA_ANALYSIS_DIAGNOSTIC_H_
