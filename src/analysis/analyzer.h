#ifndef INVERDA_ANALYSIS_ANALYZER_H_
#define INVERDA_ANALYSIS_ANALYZER_H_

#include <string>

#include "analysis/diagnostic.h"
#include "bidel/parser.h"
#include "catalog/catalog.h"

namespace inverda {

/// Static analysis of BiDEL evolutions: a lint/verification pass that runs
/// on the parsed script plus the current catalog *before* any delta code is
/// generated or the catalog is mutated (src/analysis, the ROADMAP's
/// "correctness tooling" direction).
///
/// Rule catalogue (docs/diagnostics.md has examples and fixes):
///   errors:   dangling-source-version, duplicate-version, unknown-table,
///             unknown-column, duplicate-table, duplicate-column,
///             decompose-not-partition, decompose-fk-collision,
///             merge-incompatible, default-references-dropped,
///             join-condition-constant, smo-invalid, parse-error
///   warnings: partition-overlap, partition-gap, join-key-not-unique
///   notes:    info-loss, version-verdict

/// Analyzes one CREATE SCHEMA VERSION statement against the catalog without
/// mutating anything. Emits per-SMO diagnostics, an info-loss note per SMO
/// that needs auxiliary state (the paper's Table 2), and a composed
/// round-trip verdict note for the new version (well-behaved /
/// lossy-with-auxiliary / unsafe).
AnalysisReport AnalyzeEvolution(const VersionCatalog& catalog,
                                const EvolutionStatement& stmt);

/// Lints a whole BiDEL script (CREATE/DROP SCHEMA VERSION, MATERIALIZE)
/// against the catalog without applying it. Statements are simulated in
/// order, so later statements may evolve FROM versions created earlier in
/// the same script. Parse failures become a "parse-error" diagnostic.
AnalysisReport AnalyzeScript(const VersionCatalog& catalog,
                             const std::string& script);

/// The warning/note messages of `report` formatted for recording on the
/// created schema version (shown by DescribeCatalog).
std::vector<std::string> RecordableWarnings(const AnalysisReport& report);

}  // namespace inverda

#endif  // INVERDA_ANALYSIS_ANALYZER_H_
