#include "analysis/analyzer.h"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "expr/domain.h"
#include "util/strings.h"

namespace inverda {
namespace {

// Visible table name (lower-cased) -> payload schema of one simulated
// schema version.
using TableMap = std::map<std::string, TableSchema>;

// Simulated catalog state while linting a script: schema versions created
// or dropped by earlier statements overlay the real catalog, which is never
// mutated.
class Simulator {
 public:
  explicit Simulator(const VersionCatalog& catalog) : catalog_(catalog) {}

  bool HasVersion(const std::string& name) const {
    std::string key = ToLower(name);
    if (overlay_.count(key)) return true;
    if (dropped_.count(key)) return false;
    return catalog_.HasVersion(name);
  }

  std::optional<TableMap> Tables(const std::string& name) const {
    std::string key = ToLower(name);
    auto it = overlay_.find(key);
    if (it != overlay_.end()) return it->second;
    if (dropped_.count(key)) return std::nullopt;
    Result<const SchemaVersionInfo*> info = catalog_.FindVersion(name);
    if (!info.ok()) return std::nullopt;
    TableMap out;
    for (const auto& [table, tv] : (*info)->tables) {
      out.emplace(table, catalog_.table_version(tv).schema);
    }
    return out;
  }

  void Define(const std::string& name, TableMap tables) {
    std::string key = ToLower(name);
    dropped_.erase(key);
    overlay_[key] = std::move(tables);
  }

  void Drop(const std::string& name) {
    std::string key = ToLower(name);
    overlay_.erase(key);
    dropped_.insert(key);
  }

 private:
  const VersionCatalog& catalog_;
  std::map<std::string, TableMap> overlay_;
  std::set<std::string> dropped_;
};

std::string DescribeRow(const TableSchema& schema, const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    if (i < schema.columns().size()) out += schema.columns()[i].name + "=";
    out += row[i].ToString();
  }
  return out + ")";
}

std::string JoinColumnNames(const std::vector<Column>& columns) {
  std::string out;
  for (const Column& c : columns) {
    if (!out.empty()) out += ", ";
    out += c.name;
  }
  return out;
}

// Analyzes the SMO list of one CREATE SCHEMA VERSION statement against a
// base table map, accumulating diagnostics. Simulation stops at the first
// error (later SMOs would only cascade).
class EvolutionAnalyzer {
 public:
  EvolutionAnalyzer(const EvolutionStatement& stmt, TableMap tables,
                    AnalysisReport* report)
      : stmt_(stmt), tables_(std::move(tables)), report_(report) {}

  // True when the whole SMO list simulated without errors; `tables()` then
  // holds the resulting schema version.
  bool Run() {
    for (size_t i = 0; i < stmt_.smos.size(); ++i) {
      SourceSpan span =
          i < stmt_.smo_spans.size() ? stmt_.smo_spans[i] : stmt_.span;
      if (stmt_.smos[i] == nullptr) {
        Add("smo-invalid", DiagSeverity::kError, span, "null SMO");
        return false;
      }
      if (!AnalyzeSmo(*stmt_.smos[i], span)) return false;
    }
    return true;
  }

  const TableMap& tables() const { return tables_; }
  bool lossy() const { return lossy_; }

 private:
  void Add(std::string rule, DiagSeverity severity, SourceSpan span,
           std::string message, std::string fixit = "") {
    report_->diagnostics.push_back(Diagnostic{
        std::move(rule), severity, span, std::move(message),
        std::move(fixit)});
  }

  const TableSchema* Find(const std::string& table) const {
    auto it = tables_.find(ToLower(table));
    return it == tables_.end() ? nullptr : &it->second;
  }

  std::string AvailableTables() const {
    std::string out;
    for (const auto& [key, schema] : tables_) {
      if (!out.empty()) out += ", ";
      out += schema.name();
    }
    return out.empty() ? "(none)" : out;
  }

  // Reports unknown-column for every column referenced by `expr` that does
  // not resolve in `schema`; true when all resolve.
  bool CheckExprColumns(const Expression& expr, const TableSchema& schema,
                        SourceSpan span, const char* context) {
    std::set<std::string> columns;
    expr.CollectColumns(&columns);
    bool ok = true;
    for (const std::string& c : columns) {
      if (!schema.FindColumn(c)) {
        Add("unknown-column", DiagSeverity::kError, span,
            std::string("column ") + c + " referenced by the " + context +
                " '" + expr.ToString() + "' is not in " + schema.ToString());
        ok = false;
      }
    }
    return ok;
  }

  // Overlap/gap analysis of a condition pair over `schema` (SPLIT targets
  // or MERGE sources). `left`/`right` name the two partitions.
  void CheckPartitionPair(const TableSchema& schema, const ExprPtr& c_left,
                          const ExprPtr& c_right, const std::string& left,
                          const std::string& right, SourceSpan span,
                          const char* smo_name) {
    Row witness;
    switch (FindWitness(schema, {c_left, c_right}, {}, &witness)) {
      case Tri::kYes:
        Add("partition-overlap", DiagSeverity::kWarning, span,
            std::string(smo_name) + " conditions overlap: row " +
                DescribeRow(schema, witness) + " satisfies both '" +
                c_left->ToString() + "' and '" + c_right->ToString() +
                "'; such tuples are replicated into " + left + " and " +
                right,
            "make the conditions mutually exclusive if replication is not "
            "intended");
        break;
      case Tri::kUnknown:
        Add("partition-overlap", DiagSeverity::kWarning, span,
            std::string("could not statically decide whether the ") +
                smo_name + " conditions of " + left + " and " + right +
                " overlap; overlapping tuples would be replicated");
        break;
      case Tri::kNo:
        break;
    }
    switch (FindWitness(schema, {}, {c_left, c_right}, &witness)) {
      case Tri::kYes:
        Add("partition-gap", DiagSeverity::kWarning, span,
            std::string(smo_name) + " conditions leave a gap: row " +
                DescribeRow(schema, witness) + " satisfies neither '" +
                c_left->ToString() + "' nor '" + c_right->ToString() +
                "'; such tuples live only in the auxiliary partition table",
            "widen one condition so every tuple is covered");
        break;
      case Tri::kUnknown:
        Add("partition-gap", DiagSeverity::kWarning, span,
            std::string("could not statically decide whether the ") +
                smo_name + " conditions of " + left + " and " + right +
                " cover all tuples; uncovered tuples live only in the "
                "auxiliary partition table");
        break;
      case Tri::kNo:
        break;
    }
  }

  // Per-SMO information-loss classification (the paper's Table 2): name the
  // auxiliary tables that carry what the other side cannot represent.
  void NoteInfoLoss(const Smo& smo, const std::vector<AuxDef>& aux,
                    SourceSpan span) {
    if (smo.kind() == SmoKind::kDropTable) {
      lossy_ = true;
      Add("info-loss", DiagSeverity::kNote, span,
          std::string("DROP TABLE ") + smo.SourceTables()[0] +
              ": the new version loses the table; its rows stay reachable "
              "only through older schema versions");
      return;
    }
    if (aux.empty()) return;
    lossy_ = true;
    std::string list;
    for (const AuxDef& a : aux) {
      if (!list.empty()) list += ", ";
      list += a.short_name + "(" + JoinColumnNames(a.payload) + ")";
      if (a.both_sides) {
        list += " [both sides]";
      } else {
        list += a.side == SmoSide::kSource ? " [source side]"
                                           : " [target side]";
      }
    }
    Add("info-loss", DiagSeverity::kNote, span,
        std::string(SmoKindName(smo.kind())) +
            " needs auxiliary state: " + list +
            "; the evolution round-trips only together with these tables");
  }

  bool AnalyzeSmo(const Smo& smo, SourceSpan span) {
    // Resolve the source tables in the evolving table map.
    std::vector<TableSchema> sources;
    for (const std::string& src : smo.SourceTables()) {
      const TableSchema* schema = Find(src);
      if (schema == nullptr) {
        Add("unknown-table", DiagSeverity::kError, span,
            "table " + src + " does not exist at this point of the "
            "evolution (available: " + AvailableTables() + ")");
        return false;
      }
      sources.push_back(*schema);
    }

    size_t errors_before = report_->CountOf(DiagSeverity::kError);
    switch (smo.kind()) {
      case SmoKind::kCreateTable:
        CheckCreateTable(static_cast<const CreateTableSmo&>(smo), span);
        break;
      case SmoKind::kDropTable:
        break;
      case SmoKind::kRenameTable:
        break;
      case SmoKind::kRenameColumn:
        CheckRenameColumn(static_cast<const RenameColumnSmo&>(smo),
                          sources[0], span);
        break;
      case SmoKind::kAddColumn:
        CheckAddColumn(static_cast<const AddColumnSmo&>(smo), sources[0],
                       span);
        break;
      case SmoKind::kDropColumn:
        CheckDropColumn(static_cast<const DropColumnSmo&>(smo), sources[0],
                        span);
        break;
      case SmoKind::kSplit:
        CheckSplit(static_cast<const SplitSmo&>(smo), sources[0], span);
        break;
      case SmoKind::kMerge:
        CheckMerge(static_cast<const MergeSmo&>(smo), sources, span);
        break;
      case SmoKind::kDecompose:
        CheckDecompose(static_cast<const DecomposeSmo&>(smo), sources[0],
                       span);
        break;
      case SmoKind::kJoin:
        CheckJoin(static_cast<const JoinSmo&>(smo), sources, span);
        break;
    }
    if (report_->CountOf(DiagSeverity::kError) > errors_before) return false;

    // Authoritative application: the engine's own derivation catches
    // whatever the specific checks above did not model.
    Result<std::vector<TableSchema>> targets =
        smo.DeriveTargetSchemas(sources);
    if (!targets.ok()) {
      Add("smo-invalid", DiagSeverity::kError, span,
          targets.status().message());
      return false;
    }

    NoteInfoLoss(smo, smo.AuxTables(sources), span);

    for (const std::string& src : smo.SourceTables()) {
      tables_.erase(ToLower(src));
    }
    std::vector<std::string> target_names = smo.TargetTables();
    for (size_t i = 0; i < target_names.size(); ++i) {
      if (tables_.count(ToLower(target_names[i]))) {
        Add("duplicate-table", DiagSeverity::kError, span,
            "table " + target_names[i] +
                " already exists in the evolving schema version",
            "rename the new table or drop/rename the existing one first");
        return false;
      }
      tables_.emplace(ToLower(target_names[i]), (*targets)[i]);
    }
    return true;
  }

  void CheckCreateTable(const CreateTableSmo& smo, SourceSpan span) {
    std::set<std::string> seen;
    for (const Column& c : smo.schema().columns()) {
      if (!seen.insert(ToLower(c.name)).second) {
        Add("duplicate-column", DiagSeverity::kError, span,
            "column " + c.name + " declared twice in CREATE TABLE " +
                smo.schema().name());
      }
    }
  }

  void CheckRenameColumn(const RenameColumnSmo& smo,
                         const TableSchema& source, SourceSpan span) {
    if (!source.FindColumn(smo.from())) {
      Add("unknown-column", DiagSeverity::kError, span,
          "column " + smo.from() + " not in " + source.ToString());
      return;
    }
    if (!EqualsIgnoreCase(smo.from(), smo.to()) &&
        source.FindColumn(smo.to())) {
      Add("duplicate-column", DiagSeverity::kError, span,
          "renaming " + smo.from() + " to " + smo.to() + " would shadow the "
          "existing column " + smo.to() + " of " + source.ToString());
    }
  }

  void CheckAddColumn(const AddColumnSmo& smo, const TableSchema& source,
                      SourceSpan span) {
    if (source.FindColumn(smo.column())) {
      Add("duplicate-column", DiagSeverity::kError, span,
          "column " + smo.column() + " already exists in " +
              source.ToString());
    }
    if (smo.fn()) CheckExprColumns(*smo.fn(), source, span, "value function");
  }

  void CheckDropColumn(const DropColumnSmo& smo, const TableSchema& source,
                       SourceSpan span) {
    if (!source.FindColumn(smo.column())) {
      Add("unknown-column", DiagSeverity::kError, span,
          "column " + smo.column() + " not in " + source.ToString());
      return;
    }
    if (smo.default_fn() == nullptr) return;
    std::set<std::string> columns;
    smo.default_fn()->CollectColumns(&columns);
    for (const std::string& c : columns) {
      if (EqualsIgnoreCase(c, smo.column())) {
        Add("default-references-dropped", DiagSeverity::kError, span,
            "DEFAULT function '" + smo.default_fn()->ToString() +
                "' references the dropped column " + smo.column() +
                "; it is evaluated for rows written through the new "
                "version, which no longer has that column",
            "express the default in terms of the surviving columns or a "
            "literal");
      } else if (!source.FindColumn(c)) {
        Add("unknown-column", DiagSeverity::kError, span,
            "column " + c + " referenced by the DEFAULT function is not in " +
                source.ToString());
      }
    }
  }

  void CheckSplit(const SplitSmo& smo, const TableSchema& source,
                  SourceSpan span) {
    bool resolved = true;
    if (smo.r_cond()) {
      resolved &= CheckExprColumns(*smo.r_cond(), source, span,
                                   "partition condition");
    }
    if (smo.has_s() && smo.s_cond()) {
      resolved &= CheckExprColumns(*smo.s_cond(), source, span,
                                   "partition condition");
    }
    if (!resolved || !smo.has_s()) return;
    CheckPartitionPair(source, smo.r_cond(), smo.s_cond(), smo.r_name(),
                       smo.s_name(), span, "SPLIT");
  }

  void CheckMerge(const MergeSmo& smo,
                  const std::vector<TableSchema>& sources, SourceSpan span) {
    if (sources[0].columns() != sources[1].columns()) {
      Add("merge-incompatible", DiagSeverity::kError, span,
          "MERGE requires union-compatible tables: " +
              sources[0].ToString() + " vs " + sources[1].ToString(),
          "align the payload columns with RENAME/ADD/DROP COLUMN first");
      return;
    }
    bool resolved = true;
    if (smo.r_cond()) {
      resolved &= CheckExprColumns(*smo.r_cond(), sources[0], span,
                                   "partition condition");
    }
    if (smo.s_cond()) {
      resolved &= CheckExprColumns(*smo.s_cond(), sources[1], span,
                                   "partition condition");
    }
    if (!resolved || !smo.r_cond() || !smo.s_cond()) return;
    CheckPartitionPair(sources[0], smo.r_cond(), smo.s_cond(), smo.r_name(),
                       smo.s_name(), span, "MERGE");
  }

  void CheckDecompose(const DecomposeSmo& smo, const TableSchema& source,
                      SourceSpan span) {
    std::map<std::string, int> seen;
    for (const std::vector<std::string>* list :
         {&smo.s_columns(), &smo.t_columns()}) {
      for (const std::string& name : *list) {
        if (!source.FindColumn(name)) {
          Add("unknown-column", DiagSeverity::kError, span,
              "column " + name + " not in " + source.ToString());
          continue;
        }
        if (++seen[ToLower(name)] > 1) {
          Add("decompose-not-partition", DiagSeverity::kError, span,
              "column " + name + " listed twice in DECOMPOSE; the column "
              "lists must partition " + source.name() + "'s columns",
              "assign " + name + " to exactly one of the two parts");
        }
      }
    }
    if (smo.has_t()) {
      for (const Column& c : source.columns()) {
        if (seen.count(ToLower(c.name)) == 0) {
          Add("decompose-not-partition", DiagSeverity::kError, span,
              "DECOMPOSE does not cover column " + c.name + " of " +
                  source.ToString(),
              "add " + c.name + " to one of the column lists (or omit the "
              "second part for a plain projection)");
        }
      }
    }
    if (smo.method() == VerticalMethod::kFk) {
      for (const std::string& name : smo.s_columns()) {
        if (EqualsIgnoreCase(name, smo.fk_column())) {
          Add("decompose-fk-collision", DiagSeverity::kError, span,
              "generated foreign key column " + smo.fk_column() +
                  " collides with payload column " + name + " of " +
                  smo.s_name(),
              "pick a foreign key name that is not a payload column");
        }
      }
    }
    if (smo.method() == VerticalMethod::kCondition && smo.condition()) {
      CheckExprColumns(*smo.condition(), source, span, "decompose condition");
    }
  }

  void CheckJoin(const JoinSmo& smo, const std::vector<TableSchema>& sources,
                 SourceSpan span) {
    const TableSchema& l = sources[0];
    const TableSchema& r = sources[1];
    std::vector<Column> combined = l.columns();
    bool collision = false;
    for (const Column& c : r.columns()) {
      bool dup = false;
      for (const Column& existing : l.columns()) {
        if (EqualsIgnoreCase(existing.name, c.name)) dup = true;
      }
      if (dup) {
        collision = true;
        Add("duplicate-column", DiagSeverity::kError, span,
            "JOIN column name collision on " + c.name + " between " +
                l.name() + " and " + r.name(),
            "rename the column in one side before joining");
      } else {
        combined.push_back(c);
      }
    }
    if (smo.method() == VerticalMethod::kFk && !l.FindColumn(smo.fk_column())) {
      Add("unknown-column", DiagSeverity::kError, span,
          "foreign key column " + smo.fk_column() + " not in " +
              l.ToString());
    }
    if (smo.method() == VerticalMethod::kCondition && smo.condition()) {
      std::set<std::string> columns;
      smo.condition()->CollectColumns(&columns);
      if (columns.empty()) {
        Add("join-condition-constant", DiagSeverity::kError, span,
            "JOIN condition '" + smo.condition()->ToString() +
                "' references no columns; the join degenerates to a "
                "constant (cross product or empty)",
            "relate a column of " + l.name() + " to a column of " +
                r.name());
        return;
      }
      if (!collision) {
        TableSchema joined("joined", combined);
        if (!CheckExprColumns(*smo.condition(), joined, span,
                              "join condition")) {
          return;
        }
      }
      Add("join-key-not-unique", DiagSeverity::kWarning, span,
          "JOIN ON '" + smo.condition()->ToString() +
              "' is not a key-based match: one row may pair with many "
              "partners, so the join generates fresh ids (kept stable via "
              "the id table)",
          "use ON PK or ON FK when the association is key-determined");
    }
  }

  const EvolutionStatement& stmt_;
  TableMap tables_;
  AnalysisReport* report_;
  bool lossy_ = false;
};

// Shared by AnalyzeEvolution and AnalyzeScript: analyzes one evolution
// statement against the simulator, defining the new version on success.
void AnalyzeEvolutionInto(Simulator* sim, const EvolutionStatement& stmt,
                          AnalysisReport* report) {
  size_t errors_before = report->CountOf(DiagSeverity::kError);
  bool duplicate = sim->HasVersion(stmt.new_version);
  if (duplicate) {
    report->diagnostics.push_back(Diagnostic{
        "duplicate-version", DiagSeverity::kError, stmt.name_span,
        "schema version " + stmt.new_version + " already exists",
        "pick a fresh version name"});
  }

  TableMap base;
  if (stmt.from_version) {
    std::optional<TableMap> tables = sim->Tables(*stmt.from_version);
    if (!tables) {
      report->diagnostics.push_back(Diagnostic{
          "dangling-source-version", DiagSeverity::kError, stmt.from_span,
          "source schema version " + *stmt.from_version + " does not exist",
          ""});
      report->diagnostics.push_back(Diagnostic{
          "version-verdict", DiagSeverity::kNote,
          stmt.name_span.empty() ? stmt.span : stmt.name_span,
          "round-trip verdict for " + stmt.new_version +
              ": unsafe (the evolution cannot be applied)",
          ""});
      return;
    }
    base = std::move(*tables);
  }

  EvolutionAnalyzer analyzer(stmt, std::move(base), report);
  bool clean = analyzer.Run();

  bool unsafe = report->CountOf(DiagSeverity::kError) > errors_before;
  std::string verdict;
  if (unsafe) {
    verdict = "unsafe (the evolution is rejected)";
  } else if (analyzer.lossy()) {
    verdict =
        "lossy-with-auxiliary (round trips hold only together with the "
        "auxiliary tables above)";
  } else {
    verdict = "well-behaved (every SMO is invertible without auxiliary "
              "state)";
  }
  report->diagnostics.push_back(Diagnostic{
      "version-verdict", DiagSeverity::kNote,
      stmt.name_span.empty() ? stmt.span : stmt.name_span,
      "round-trip verdict for " + stmt.new_version + ": " + verdict, ""});

  if (clean && !duplicate) {
    sim->Define(stmt.new_version, analyzer.tables());
  }
}

}  // namespace

AnalysisReport AnalyzeEvolution(const VersionCatalog& catalog,
                                const EvolutionStatement& stmt) {
  AnalysisReport report;
  Simulator sim(catalog);
  AnalyzeEvolutionInto(&sim, stmt, &report);
  return report;
}

AnalysisReport AnalyzeScript(const VersionCatalog& catalog,
                             const std::string& script) {
  AnalysisReport report;
  Result<std::vector<BidelStatement>> parsed = ParseBidel(script);
  if (!parsed.ok()) {
    report.diagnostics.push_back(Diagnostic{
        "parse-error", DiagSeverity::kError, SourceSpan{},
        parsed.status().message(), ""});
    return report;
  }

  Simulator sim(catalog);
  for (const BidelStatement& stmt : *parsed) {
    if (const auto* evo = std::get_if<EvolutionStatement>(&stmt)) {
      AnalyzeEvolutionInto(&sim, *evo, &report);
    } else if (const auto* drop = std::get_if<DropVersionStatement>(&stmt)) {
      if (!sim.HasVersion(drop->version)) {
        report.diagnostics.push_back(Diagnostic{
            "dangling-source-version", DiagSeverity::kError, drop->span,
            "schema version " + drop->version + " does not exist", ""});
      } else {
        sim.Drop(drop->version);
      }
    } else if (const auto* mat = std::get_if<MaterializeStatement>(&stmt)) {
      for (size_t i = 0; i < mat->targets.size(); ++i) {
        SourceSpan span =
            i < mat->target_spans.size() ? mat->target_spans[i] : mat->span;
        const std::string& target = mat->targets[i];
        size_t dot = target.find('.');
        std::string version = target.substr(0, dot);
        if (!sim.HasVersion(version)) {
          report.diagnostics.push_back(Diagnostic{
              "dangling-source-version", DiagSeverity::kError, span,
              "materialization target " + target +
                  " names unknown schema version " + version,
              ""});
          continue;
        }
        if (dot != std::string::npos) {
          std::string table = target.substr(dot + 1);
          std::optional<TableMap> tables = sim.Tables(version);
          if (tables && tables->count(ToLower(table)) == 0) {
            report.diagnostics.push_back(Diagnostic{
                "unknown-table", DiagSeverity::kError, span,
                "materialization target " + target + " names unknown table " +
                    table + " in schema version " + version,
                ""});
          }
        }
      }
    }
  }
  return report;
}

std::vector<std::string> RecordableWarnings(const AnalysisReport& report) {
  std::vector<std::string> out;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.severity == DiagSeverity::kError) continue;
    out.push_back(std::string(DiagSeverityName(d.severity)) + "[" + d.rule +
                  "]: " + d.message);
  }
  return out;
}

}  // namespace inverda
