#include "analysis/diagnostic.h"

#include <cstdio>

namespace inverda {
namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* DiagSeverityName(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::kError:
      return "error";
    case DiagSeverity::kWarning:
      return "warning";
    case DiagSeverity::kNote:
      return "note";
  }
  return "?";
}

bool AnalysisReport::has_errors() const {
  return FirstError() != nullptr;
}

size_t AnalysisReport::CountOf(DiagSeverity severity) const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

const Diagnostic* AnalysisReport::FirstError() const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == DiagSeverity::kError) return &d;
  }
  return nullptr;
}

std::string FormatDiagnostic(const Diagnostic& d, const std::string& script) {
  std::string out = std::string(DiagSeverityName(d.severity)) + "[" + d.rule +
                    "]";
  bool locatable = !script.empty() && !d.span.empty() &&
                   d.span.begin < script.size();
  if (locatable) {
    LineCol pos = LocateOffset(script, d.span.begin);
    out += " at " + std::to_string(pos.line) + ":" +
           std::to_string(pos.column);
  }
  out += ": " + d.message + "\n";
  if (locatable) out += CaretSnippet(script, d.span);
  if (!d.fixit.empty()) out += "  fix: " + d.fixit + "\n";
  return out;
}

std::string FormatReport(const AnalysisReport& report,
                         const std::string& script) {
  std::string out;
  for (const Diagnostic& d : report.diagnostics) {
    out += FormatDiagnostic(d, script);
  }
  out += std::to_string(report.CountOf(DiagSeverity::kError)) + " error(s), " +
         std::to_string(report.CountOf(DiagSeverity::kWarning)) +
         " warning(s), " + std::to_string(report.CountOf(DiagSeverity::kNote)) +
         " note(s)\n";
  return out;
}

std::string ReportToJson(const AnalysisReport& report,
                         const std::string& script) {
  std::string out = "{\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : report.diagnostics) {
    if (!first) out += ",";
    first = false;
    out += "{\"rule\":\"" + EscapeJson(d.rule) + "\"";
    out += ",\"severity\":\"" + std::string(DiagSeverityName(d.severity)) +
           "\"";
    out += ",\"message\":\"" + EscapeJson(d.message) + "\"";
    if (!d.fixit.empty()) out += ",\"fixit\":\"" + EscapeJson(d.fixit) + "\"";
    if (!d.span.empty()) {
      out += ",\"span\":{\"begin\":" + std::to_string(d.span.begin) +
             ",\"end\":" + std::to_string(d.span.end);
      if (!script.empty() && d.span.begin < script.size()) {
        LineCol pos = LocateOffset(script, d.span.begin);
        out += ",\"line\":" + std::to_string(pos.line) +
               ",\"column\":" + std::to_string(pos.column);
      }
      out += "}";
    }
    out += "}";
  }
  out += "],\"errors\":" +
         std::to_string(report.CountOf(DiagSeverity::kError)) +
         ",\"warnings\":" +
         std::to_string(report.CountOf(DiagSeverity::kWarning)) +
         ",\"notes\":" + std::to_string(report.CountOf(DiagSeverity::kNote)) +
         "}";
  return out;
}

StatusCode DiagnosticStatusCode(const Diagnostic& d) {
  if (d.rule == "unknown-table" || d.rule == "unknown-column" ||
      d.rule == "dangling-source-version") {
    return StatusCode::kNotFound;
  }
  if (d.rule == "duplicate-table" || d.rule == "duplicate-column" ||
      d.rule == "duplicate-version" || d.rule == "decompose-fk-collision") {
    return StatusCode::kAlreadyExists;
  }
  return StatusCode::kInvalidArgument;
}

Status ReportToStatus(const AnalysisReport& report) {
  const Diagnostic* err = report.FirstError();
  if (err == nullptr) return Status::OK();
  return Status(DiagnosticStatusCode(*err),
                "[" + err->rule + "] " + err->message);
}

}  // namespace inverda
