#ifndef INVERDA_CATALOG_CATALOG_H_
#define INVERDA_CATALOG_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bidel/parser.h"
#include "bidel/smo.h"
#include "mapping/side.h"
#include "util/status.h"

namespace inverda {

using SmoId = int;

/// One table version: a vertex of the schema genealogy. Every table version
/// is created by exactly one incoming SMO instance and evolved by
/// arbitrarily many outgoing ones (Section 3 of the paper).
struct TableVersion {
  TvId id = -1;
  std::string name;    // table name as visible in its schema versions
  TableSchema schema;  // payload schema (schema.name() == name)
  SmoId incoming = -1;
  std::vector<SmoId> outgoing;
};

/// One SMO instance: a hyperedge of the schema genealogy, evolving a set of
/// source table versions into a set of target table versions, with a
/// materialization state.
struct SmoInstance {
  SmoId id = -1;
  SmoPtr smo;
  std::vector<TvId> sources;
  std::vector<TvId> targets;

  /// True when the data lives on the target side. CREATE TABLE instances
  /// are always materialized; DROP TABLE instances never are.
  bool materialized = false;

  /// Auxiliary tables, resolved against the source schemas at registration.
  std::vector<AuxDef> aux_defs;

  /// Id memo for identifier-generating SMOs (shared so contexts can borrow
  /// it without owning).
  std::shared_ptr<IdMemo> memo = std::make_shared<IdMemo>();
};

/// A schema version: a named subset of all table versions.
struct SchemaVersionInfo {
  std::string name;
  std::map<std::string, TvId> tables;  // visible table name -> table version
  std::optional<std::string> parent;

  /// Creation sequence number (0 for the first registered version).
  int order = 0;

  /// The SMO instances of the CREATE SCHEMA VERSION statement that created
  /// this version, in statement order.
  std::vector<SmoId> smos;

  /// Lint findings (warnings/notes from src/analysis) recorded when the
  /// version was created; shown by DescribeVersion/DescribeCatalog.
  std::vector<std::string> lint_warnings;
};

/// Outcome of dropping a schema version: what was garbage collected.
struct DropResult {
  std::vector<TvId> removed_tables;
  std::vector<SmoId> removed_smos;
};

/// Reachability of one SMO instance over the genealogy hypergraph: the
/// table versions upstream of the instance (its sources and their
/// ancestors) and downstream of it (its targets and their descendants).
/// A table version's access path can pass through the instance iff the
/// version is in one of the two sets.
struct SmoReach {
  std::set<TvId> upstream;
  std::set<TvId> downstream;
};

/// The schema version catalog: the central knowledge base for all schema
/// versions and the evolutions between them, stored as a directed acyclic
/// hypergraph of table versions and SMO instances.
class VersionCatalog {
 public:
  VersionCatalog() = default;

  // The catalog owns the genealogy; it is not copyable.
  VersionCatalog(const VersionCatalog&) = delete;
  VersionCatalog& operator=(const VersionCatalog&) = delete;

  // --- registration --------------------------------------------------------

  /// Registers a CREATE SCHEMA VERSION statement: resolves each SMO against
  /// the evolving table map, derives target schemas, and records the new
  /// schema version. Newly created SMO instance ids are returned in order.
  Result<std::vector<SmoId>> ApplyEvolution(const EvolutionStatement& stmt);

  /// Drops a schema version and garbage-collects table versions and SMO
  /// instances that no longer connect surviving versions. Fails with
  /// InvalidState if dropping would strand materialized data (materialize a
  /// surviving version first).
  Result<DropResult> DropVersion(const std::string& name);

  // --- queries --------------------------------------------------------------

  bool HasVersion(const std::string& name) const;
  Result<const SchemaVersionInfo*> FindVersion(const std::string& name) const;
  std::vector<std::string> VersionNames() const;

  /// Attaches lint findings to an existing schema version (recorded by the
  /// Evolve gate after the analyzer ran). Replaces previous findings.
  Status SetLintWarnings(const std::string& version,
                         std::vector<std::string> warnings);

  /// Version names in creation order (the genealogy replay order).
  std::vector<std::string> VersionNamesInOrder() const;

  /// The table version visible as `table` in schema version `version`.
  Result<TvId> ResolveTable(const std::string& version,
                            const std::string& table) const;

  const TableVersion& table_version(TvId id) const { return tvs_.at(id); }
  const SmoInstance& smo(SmoId id) const { return smos_.at(id); }
  SmoInstance& mutable_smo(SmoId id) { return smos_.at(id); }
  bool HasSmo(SmoId id) const { return smos_.count(id) > 0; }

  std::vector<TvId> AllTableVersions() const;
  std::vector<SmoId> AllSmos() const;

  /// A short unique label like "Task-0" for diagnostics and Table 2 output.
  std::string TvLabel(TvId id) const;

  // --- physical naming ------------------------------------------------------

  /// Name of the physical data table backing table version `id`.
  std::string DataTableName(TvId id) const;

  /// Name of the physical table backing aux `short_name` of SMO `id`.
  std::string AuxTableName(SmoId id, const std::string& short_name) const;

  // --- materialization (materialization.cc) ---------------------------------

  /// True when table version `id` is physically stored under the current
  /// materialization: its incoming SMO is materialized and no outgoing SMO
  /// is (Figure 6, case 1).
  bool IsPhysical(TvId id) const;

  /// The current materialization schema: ids of materialized SMO instances
  /// (excluding the always-materialized CREATE TABLE instances).
  std::set<SmoId> CurrentMaterialization() const;

  /// Validates conditions (55) and (56) of the paper for `m`.
  Status CheckValidMaterialization(const std::set<SmoId>& m) const;

  /// The physically stored table versions under materialization `m`.
  std::vector<TvId> PhysicalTables(const std::set<SmoId>& m) const;

  /// The materialization schema that makes every listed table version
  /// physically stored (the incoming SMOs of all their ancestors).
  Result<std::set<SmoId>> MaterializationForTables(
      const std::vector<TvId>& tables) const;

  /// All valid materialization schemas (Table 2). Fails when there are more
  /// than `limit` candidate SMOs (the enumeration is exponential).
  Result<std::vector<std::set<SmoId>>> EnumerateValidMaterializations(
      int limit = 20) const;

  /// The aux short names of SMO `id` that are physically present when its
  /// materialization state is `materialized`.
  std::vector<std::string> PhysicalAuxNames(SmoId id, bool materialized) const;

  // --- reachability index (reachability.cc) ---------------------------------

  /// Upstream/downstream table versions of SMO instance `id`. Built lazily
  /// from the genealogy and cached until the structure changes.
  const SmoReach& Reach(SmoId id) const;

  /// Every table version whose access path can pass through one of `smos`:
  /// the union of the upstream and downstream closures. This is the set of
  /// versions whose derived views a migration flipping `smos` may reroute.
  std::set<TvId> AffectedBySmos(const std::set<SmoId>& smos) const;

  /// The undirected connected component of `id` in the genealogy
  /// hypergraph: the table versions that can share physical data with `id`
  /// under some materialization. Writes to `id` can never affect a version
  /// outside its component.
  const std::set<TvId>& ComponentOf(TvId id) const;

  /// Monotonic counter bumped whenever the genealogy structure changes
  /// (evolution or drop); lets callers detect staleness of anything they
  /// derived from the genealogy in O(1).
  uint64_t structure_epoch() const {
    return structure_epoch_.load(std::memory_order_acquire);
  }

  /// Monotonic counter bumped whenever anything that can change a compiled
  /// access plan changes: the genealogy structure (evolution, drop) or the
  /// materialization state of any SMO instance (migration). Compiled plans
  /// (src/plan) are pinned to this epoch, so staleness is one compare.
  /// Atomic so concurrent readers load it without coordination; bumps only
  /// happen under the facade's exclusive catalog lock, so within a serving
  /// phase every reader observes the same value.
  uint64_t materialization_epoch() const {
    return materialization_epoch_.load(std::memory_order_acquire);
  }

  /// Records a materialization-state change. Called by the migration
  /// operation after flipping SMO instances (including on rollback);
  /// structural changes bump the counter internally.
  void BumpMaterializationEpoch() {
    materialization_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

 private:
  Result<TvId> NewTableVersion(std::string name, TableSchema schema,
                               SmoId incoming);

  /// Rebuilds the reachability index if the structure changed since the
  /// last build.
  void EnsureReachability() const;

  std::map<TvId, TableVersion> tvs_;
  std::map<SmoId, SmoInstance> smos_;
  std::map<std::string, SchemaVersionInfo> versions_;
  int next_tv_id_ = 0;
  int next_smo_id_ = 0;
  int next_version_order_ = 0;

  std::atomic<uint64_t> structure_epoch_{1};
  std::atomic<uint64_t> materialization_epoch_{1};
  // Lazily built reachability index, valid while reach_epoch_ matches
  // structure_epoch_. The build is double-checked under reach_mu_ so the
  // first concurrent readers after an evolution do not race on it; once
  // built, the index is immutable until the next structural change (which
  // happens under the facade's exclusive catalog lock).
  mutable std::mutex reach_mu_;
  mutable std::atomic<uint64_t> reach_epoch_{0};
  mutable std::map<SmoId, SmoReach> reach_;
  mutable std::vector<std::set<TvId>> components_;
  mutable std::map<TvId, size_t> component_of_;
};

}  // namespace inverda

#endif  // INVERDA_CATALOG_CATALOG_H_
