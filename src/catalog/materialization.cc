#include "catalog/catalog.h"

namespace inverda {

namespace {

// SMO instances that can appear in a materialization schema: everything
// that has both sources and targets. CREATE TABLE is implicitly always
// materialized; DROP TABLE is never.
bool IsCandidate(const SmoInstance& inst) {
  return inst.smo->kind() != SmoKind::kCreateTable &&
         inst.smo->kind() != SmoKind::kDropTable;
}

bool InSchema(const VersionCatalog& catalog, const std::set<SmoId>& m,
              SmoId id) {
  const SmoInstance& inst = catalog.smo(id);
  if (inst.smo->kind() == SmoKind::kCreateTable) return true;
  if (inst.smo->kind() == SmoKind::kDropTable) return false;
  return m.count(id) > 0;
}

}  // namespace

std::set<SmoId> VersionCatalog::CurrentMaterialization() const {
  std::set<SmoId> m;
  for (const auto& [id, inst] : smos_) {
    if (IsCandidate(inst) && inst.materialized) m.insert(id);
  }
  return m;
}

Status VersionCatalog::CheckValidMaterialization(
    const std::set<SmoId>& m) const {
  for (SmoId id : m) {
    auto it = smos_.find(id);
    if (it == smos_.end()) {
      return Status::NotFound("SMO instance " + std::to_string(id));
    }
    const SmoInstance& inst = it->second;
    if (!IsCandidate(inst)) {
      return Status::InvalidArgument(
          "SMO " + inst.smo->ToString() +
          " cannot appear in a materialization schema");
    }
    for (TvId src : inst.sources) {
      const TableVersion& tv = tvs_.at(src);
      // Condition (55): the source's data must have arrived at the source
      // table version.
      if (!InSchema(*this, m, tv.incoming)) {
        return Status::InvalidArgument(
            "invalid materialization: source " + TvLabel(src) + " of " +
            inst.smo->ToString() + " is not materialized (condition 55)");
      }
      // Condition (56): no sibling SMO may also claim the source's data.
      for (SmoId other : tv.outgoing) {
        if (other != id && m.count(other)) {
          return Status::InvalidArgument(
              "invalid materialization: " + TvLabel(src) +
              " is claimed by two materialized SMOs (condition 56)");
        }
      }
    }
  }
  return Status::OK();
}

bool VersionCatalog::IsPhysical(TvId id) const {
  const TableVersion& tv = tvs_.at(id);
  const SmoInstance& in = smos_.at(tv.incoming);
  bool incoming_mat =
      in.smo->kind() == SmoKind::kCreateTable || in.materialized;
  if (!incoming_mat) return false;
  for (SmoId out : tv.outgoing) {
    const SmoInstance& o = smos_.at(out);
    if (o.smo->kind() != SmoKind::kDropTable && o.materialized) return false;
  }
  return true;
}

std::vector<TvId> VersionCatalog::PhysicalTables(
    const std::set<SmoId>& m) const {
  std::vector<TvId> out;
  for (const auto& [id, tv] : tvs_) {
    if (!InSchema(*this, m, tv.incoming)) continue;
    bool claimed = false;
    for (SmoId o : tv.outgoing) {
      if (InSchema(*this, m, o)) claimed = true;
    }
    if (!claimed) out.push_back(id);
  }
  return out;
}

Result<std::set<SmoId>> VersionCatalog::MaterializationForTables(
    const std::vector<TvId>& tables) const {
  // Materialize the incoming SMO of every ancestor-or-self of the listed
  // table versions, then validate.
  std::set<SmoId> m;
  std::vector<TvId> frontier = tables;
  while (!frontier.empty()) {
    TvId id = frontier.back();
    frontier.pop_back();
    auto it = tvs_.find(id);
    if (it == tvs_.end()) {
      return Status::NotFound("table version " + std::to_string(id));
    }
    const SmoInstance& in = smos_.at(it->second.incoming);
    if (in.smo->kind() == SmoKind::kCreateTable) continue;
    if (m.count(in.id)) continue;
    m.insert(in.id);
    for (TvId src : in.sources) frontier.push_back(src);
  }
  INVERDA_RETURN_IF_ERROR(CheckValidMaterialization(m));
  // Every listed table version must actually be physical under m.
  std::vector<TvId> physical = PhysicalTables(m);
  for (TvId t : tables) {
    bool found = false;
    for (TvId p : physical) {
      if (p == t) found = true;
    }
    if (!found) {
      return Status::InvalidArgument(
          "table version " + TvLabel(t) +
          " cannot be materialized together with the other targets");
    }
  }
  return m;
}

Result<std::vector<std::set<SmoId>>>
VersionCatalog::EnumerateValidMaterializations(int limit) const {
  std::vector<SmoId> candidates;
  for (const auto& [id, inst] : smos_) {
    if (IsCandidate(inst)) candidates.push_back(id);
  }
  if (static_cast<int>(candidates.size()) > limit) {
    return Status::InvalidArgument(
        "too many SMO instances (" + std::to_string(candidates.size()) +
        ") to enumerate materialization schemas");
  }
  std::vector<std::set<SmoId>> valid;
  uint64_t combinations = 1ULL << candidates.size();
  for (uint64_t bits = 0; bits < combinations; ++bits) {
    std::set<SmoId> m;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (bits & (1ULL << i)) m.insert(candidates[i]);
    }
    if (CheckValidMaterialization(m).ok()) valid.push_back(std::move(m));
  }
  return valid;
}

std::vector<std::string> VersionCatalog::PhysicalAuxNames(
    SmoId id, bool materialized) const {
  const SmoInstance& inst = smos_.at(id);
  std::vector<std::string> out;
  for (const AuxDef& aux : inst.aux_defs) {
    bool present = aux.both_sides ||
                   (materialized ? aux.side == SmoSide::kTarget
                                 : aux.side == SmoSide::kSource);
    if (present) out.push_back(aux.short_name);
  }
  return out;
}

}  // namespace inverda
