#include "catalog/describe.h"

#include "util/strings.h"

namespace inverda {

Result<std::string> DescribeVersion(const VersionCatalog& catalog,
                                    const std::string& version) {
  INVERDA_ASSIGN_OR_RETURN(const SchemaVersionInfo* info,
                           catalog.FindVersion(version));
  std::string out = "schema version " + info->name;
  if (info->parent) out += " (from " + *info->parent + ")";
  out += "\n";
  for (const auto& [name, tv_id] : info->tables) {
    (void)name;
    const TableVersion& tv = catalog.table_version(tv_id);
    out += "  " + tv.schema.ToString();
    if (catalog.IsPhysical(tv_id)) {
      out += "  [physical: " + catalog.DataTableName(tv_id) + "]";
    } else {
      out += "  [virtual]";
    }
    out += "\n";
  }
  for (const std::string& finding : info->lint_warnings) {
    out += "  lint: " + finding + "\n";
  }
  return out;
}

std::string DescribeCatalog(const VersionCatalog& catalog) {
  std::string out = "=== schema version catalog ===\n";
  for (const std::string& version : catalog.VersionNames()) {
    Result<std::string> desc = DescribeVersion(catalog, version);
    if (desc.ok()) out += *desc;
  }
  out += "--- SMO instances ---\n";
  for (SmoId id : catalog.AllSmos()) {
    const SmoInstance& inst = catalog.smo(id);
    out += "  #" + std::to_string(id) + " " + inst.smo->ToString();
    out += inst.materialized ? "  [materialized]" : "  [virtualized]";
    std::vector<std::string> sources, targets;
    for (TvId tv : inst.sources) sources.push_back(catalog.TvLabel(tv));
    for (TvId tv : inst.targets) targets.push_back(catalog.TvLabel(tv));
    out += "  {" + Join(sources, ", ") + "} -> {" + Join(targets, ", ") +
           "}\n";
    const SmoReach& reach = catalog.Reach(id);
    std::vector<std::string> up, down;
    for (TvId tv : reach.upstream) up.push_back(catalog.TvLabel(tv));
    for (TvId tv : reach.downstream) down.push_back(catalog.TvLabel(tv));
    out += "      reach: upstream {" + Join(up, ", ") + "}  downstream {" +
           Join(down, ", ") + "}\n";
  }
  return out;
}

namespace {

std::string Escape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string CatalogToDot(const VersionCatalog& catalog) {
  std::string out = "digraph genealogy {\n  rankdir=LR;\n";
  // Table versions.
  for (TvId id : catalog.AllTableVersions()) {
    const TableVersion& tv = catalog.table_version(id);
    (void)tv;
    out += "  tv" + std::to_string(id) + " [shape=box, label=\"" +
           Escape(catalog.TvLabel(id)) + "\"";
    if (catalog.IsPhysical(id)) {
      out += ", style=filled, fillcolor=lightblue";
    }
    out += "];\n";
  }
  // SMO instances as hyperedges.
  for (SmoId id : catalog.AllSmos()) {
    const SmoInstance& inst = catalog.smo(id);
    std::string node = "smo" + std::to_string(id);
    out += "  " + node + " [shape=ellipse, label=\"" +
           Escape(SmoKindName(inst.smo->kind())) + "\"";
    if (inst.materialized) out += ", style=filled, fillcolor=lightyellow";
    out += "];\n";
    for (TvId src : inst.sources) {
      out += "  tv" + std::to_string(src) + " -> " + node + ";\n";
    }
    for (TvId tgt : inst.targets) {
      out += "  " + node + " -> tv" + std::to_string(tgt) + ";\n";
    }
  }
  // Schema versions as dashed clusters.
  int cluster = 0;
  for (const std::string& version : catalog.VersionNames()) {
    Result<const SchemaVersionInfo*> info = catalog.FindVersion(version);
    if (!info.ok()) continue;
    out += "  subgraph cluster_" + std::to_string(cluster++) + " {\n";
    out += "    label=\"" + Escape(version) + "\"; style=dashed;\n   ";
    for (const auto& [name, tv] : (*info)->tables) {
      (void)name;
      out += " tv" + std::to_string(tv) + ";";
    }
    out += "\n  }\n";
  }
  out += "}\n";
  return out;
}

}  // namespace inverda
