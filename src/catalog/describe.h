#ifndef INVERDA_CATALOG_DESCRIBE_H_
#define INVERDA_CATALOG_DESCRIBE_H_

#include <string>

#include "catalog/catalog.h"

namespace inverda {

/// Human-readable description of one schema version: its tables with
/// schemas and, per table, where its data physically lives (the propagation
/// distance through the genealogy).
Result<std::string> DescribeVersion(const VersionCatalog& catalog,
                                    const std::string& version);

/// Multi-line dump of the whole schema version catalog: versions, table
/// versions, SMO instances with materialization states — the textual
/// equivalent of the paper's Figure 4.
std::string DescribeCatalog(const VersionCatalog& catalog);

/// GraphViz dot rendering of the genealogy hypergraph: table versions as
/// boxes (physical ones filled), SMO instances as ellipses, schema versions
/// as dashed clusters.
std::string CatalogToDot(const VersionCatalog& catalog);

}  // namespace inverda

#endif  // INVERDA_CATALOG_DESCRIBE_H_
