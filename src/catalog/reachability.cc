#include "catalog/catalog.h"

namespace inverda {

// The genealogy is a DAG of table versions connected by SMO hyperedges, so
// the closures below are plain BFS over the hyperedges. The index is small
// (one set pair per SMO instance, one component per independent lineage)
// and rebuilt wholesale whenever the structure epoch moves — evolutions and
// drops are rare next to reads and writes.

void VersionCatalog::EnsureReachability() const {
  const uint64_t structure = structure_epoch();
  if (reach_epoch_.load(std::memory_order_acquire) == structure) return;
  // First access after a structural change: rebuild under the mutex so
  // concurrent readers either build it themselves (double-checked) or wait
  // and then use the finished index.
  std::lock_guard<std::mutex> lock(reach_mu_);
  if (reach_epoch_.load(std::memory_order_relaxed) == structure) return;
  reach_.clear();
  components_.clear();
  component_of_.clear();

  for (const auto& [id, inst] : smos_) {
    SmoReach reach;
    // Upstream: the sources and, transitively, the sources of each table
    // version's incoming SMO instance.
    std::vector<TvId> frontier = inst.sources;
    while (!frontier.empty()) {
      TvId tv = frontier.back();
      frontier.pop_back();
      if (!reach.upstream.insert(tv).second) continue;
      const SmoInstance& in = smos_.at(tvs_.at(tv).incoming);
      frontier.insert(frontier.end(), in.sources.begin(), in.sources.end());
    }
    // Downstream: the targets and, transitively, the targets of every
    // outgoing SMO instance.
    frontier = inst.targets;
    while (!frontier.empty()) {
      TvId tv = frontier.back();
      frontier.pop_back();
      if (!reach.downstream.insert(tv).second) continue;
      for (SmoId out : tvs_.at(tv).outgoing) {
        const SmoInstance& o = smos_.at(out);
        frontier.insert(frontier.end(), o.targets.begin(), o.targets.end());
      }
    }
    reach_.emplace(id, std::move(reach));
  }

  // Undirected connected components: data can flow in either direction
  // depending on the materialization, so two table versions can share
  // physical state iff they are in the same component.
  for (const auto& [start, start_tv] : tvs_) {
    (void)start_tv;
    if (component_of_.count(start)) continue;
    std::set<TvId> component;
    std::vector<TvId> frontier{start};
    while (!frontier.empty()) {
      TvId tv = frontier.back();
      frontier.pop_back();
      if (!component.insert(tv).second) continue;
      auto follow = [&](const SmoInstance& inst) {
        frontier.insert(frontier.end(), inst.sources.begin(),
                        inst.sources.end());
        frontier.insert(frontier.end(), inst.targets.begin(),
                        inst.targets.end());
      };
      follow(smos_.at(tvs_.at(tv).incoming));
      for (SmoId out : tvs_.at(tv).outgoing) follow(smos_.at(out));
    }
    size_t index = components_.size();
    for (TvId tv : component) component_of_[tv] = index;
    components_.push_back(std::move(component));
  }
  reach_epoch_.store(structure, std::memory_order_release);
}

const SmoReach& VersionCatalog::Reach(SmoId id) const {
  EnsureReachability();
  return reach_.at(id);
}

std::set<TvId> VersionCatalog::AffectedBySmos(
    const std::set<SmoId>& smos) const {
  EnsureReachability();
  std::set<TvId> out;
  for (SmoId id : smos) {
    auto it = reach_.find(id);
    if (it == reach_.end()) continue;
    out.insert(it->second.upstream.begin(), it->second.upstream.end());
    out.insert(it->second.downstream.begin(), it->second.downstream.end());
  }
  return out;
}

const std::set<TvId>& VersionCatalog::ComponentOf(TvId id) const {
  EnsureReachability();
  return components_[component_of_.at(id)];
}

}  // namespace inverda
