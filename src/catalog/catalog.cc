#include "catalog/catalog.h"

#include <algorithm>

#include "util/strings.h"

namespace inverda {

namespace {

// Schema-version table maps use lower-cased keys so names are
// case-insensitive, matching SQL identifier behaviour.
std::string Key(const std::string& name) { return ToLower(name); }

}  // namespace

Result<TvId> VersionCatalog::NewTableVersion(std::string name,
                                             TableSchema schema,
                                             SmoId incoming) {
  TvId id = next_tv_id_++;
  TableVersion tv;
  tv.id = id;
  tv.name = std::move(name);
  tv.schema = std::move(schema);
  tv.incoming = incoming;
  tvs_.emplace(id, std::move(tv));
  return id;
}

Result<std::vector<SmoId>> VersionCatalog::ApplyEvolution(
    const EvolutionStatement& stmt) {
  if (versions_.count(Key(stmt.new_version))) {
    return Status::AlreadyExists("schema version " + stmt.new_version);
  }
  std::map<std::string, TvId> tables;
  if (stmt.from_version) {
    INVERDA_ASSIGN_OR_RETURN(const SchemaVersionInfo* parent,
                             FindVersion(*stmt.from_version));
    tables = parent->tables;
  }

  // Stage everything; only commit to the catalog maps at the end so a
  // failing SMO leaves the catalog untouched.
  std::map<TvId, TableVersion> staged_tvs;
  std::map<SmoId, SmoInstance> staged_smos;
  std::vector<SmoId> new_smo_ids;
  int tv_counter = next_tv_id_;
  int smo_counter = next_smo_id_;

  auto lookup_schema = [&](TvId id) -> const TableSchema& {
    auto it = staged_tvs.find(id);
    if (it != staged_tvs.end()) return it->second.schema;
    return tvs_.at(id).schema;
  };

  for (const SmoPtr& smo : stmt.smos) {
    SmoInstance inst;
    inst.id = smo_counter++;
    inst.smo = smo;

    // Resolve source tables against the evolving table map.
    std::vector<TableSchema> source_schemas;
    for (const std::string& src : smo->SourceTables()) {
      auto it = tables.find(Key(src));
      if (it == tables.end()) {
        return Status::NotFound("table " + src + " not in schema version " +
                                (stmt.from_version ? *stmt.from_version
                                                   : stmt.new_version) +
                                " while applying: " + smo->ToString());
      }
      inst.sources.push_back(it->second);
      source_schemas.push_back(lookup_schema(it->second));
    }

    INVERDA_ASSIGN_OR_RETURN(std::vector<TableSchema> target_schemas,
                             smo->DeriveTargetSchemas(source_schemas));
    inst.aux_defs = smo->AuxTables(source_schemas);
    inst.materialized = smo->kind() == SmoKind::kCreateTable;

    // Remove the source names, then add the targets.
    for (const std::string& src : smo->SourceTables()) {
      tables.erase(Key(src));
    }
    std::vector<std::string> target_names = smo->TargetTables();
    for (size_t i = 0; i < target_names.size(); ++i) {
      if (tables.count(Key(target_names[i]))) {
        return Status::AlreadyExists("table " + target_names[i] +
                                     " already exists while applying: " +
                                     smo->ToString());
      }
      TvId tv_id = tv_counter++;
      TableVersion tv;
      tv.id = tv_id;
      tv.name = target_names[i];
      tv.schema = target_schemas[i];
      tv.incoming = inst.id;
      staged_tvs.emplace(tv_id, std::move(tv));
      inst.targets.push_back(tv_id);
      tables.emplace(Key(target_names[i]), tv_id);
    }
    new_smo_ids.push_back(inst.id);
    staged_smos.emplace(inst.id, std::move(inst));
  }

  // Commit.
  for (auto& [id, inst] : staged_smos) {
    for (TvId src : inst.sources) {
      auto it = staged_tvs.find(src);
      TableVersion& tv = it != staged_tvs.end() ? it->second : tvs_.at(src);
      tv.outgoing.push_back(id);
    }
  }
  for (auto& [id, tv] : staged_tvs) tvs_.emplace(id, std::move(tv));
  for (auto& [id, inst] : staged_smos) smos_.emplace(id, std::move(inst));
  next_tv_id_ = tv_counter;
  next_smo_id_ = smo_counter;
  ++structure_epoch_;
  ++materialization_epoch_;

  SchemaVersionInfo info;
  info.name = stmt.new_version;
  info.tables = std::move(tables);
  info.parent = stmt.from_version;
  info.order = next_version_order_++;
  info.smos = new_smo_ids;
  versions_.emplace(Key(stmt.new_version), std::move(info));
  return new_smo_ids;
}

Result<DropResult> VersionCatalog::DropVersion(const std::string& name) {
  auto it = versions_.find(Key(name));
  if (it == versions_.end()) {
    return Status::NotFound("schema version " + name);
  }
  SchemaVersionInfo dropped = it->second;

  // Which table versions survive in other schema versions?
  auto in_surviving_version = [&](TvId id) {
    for (const auto& [vname, info] : versions_) {
      if (vname == Key(name)) continue;
      for (const auto& [tname, tv] : info.tables) {
        (void)tname;
        if (tv == id) return true;
      }
    }
    return false;
  };

  // Iteratively peel dead leaves: table versions in no surviving schema
  // version with no outgoing SMOs, and SMO instances whose targets are all
  // dead. A materialized SMO with dead targets would strand data.
  DropResult result;
  std::set<TvId> dead_tvs;
  std::set<SmoId> dead_smos;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [tv_id, tv] : tvs_) {
      if (dead_tvs.count(tv_id)) continue;
      if (in_surviving_version(tv_id)) continue;
      bool leaf = true;
      for (SmoId out : tv.outgoing) {
        if (!dead_smos.count(out)) leaf = false;
      }
      if (!leaf) continue;
      // The table version is only reachable through the dropped version.
      // It can go once its incoming SMO's other targets can go too; we
      // remove the tv now and consider the SMO below.
      dead_tvs.insert(tv_id);
      changed = true;
    }
    for (const auto& [smo_id, inst] : smos_) {
      if (dead_smos.count(smo_id)) continue;
      if (inst.targets.empty() && inst.smo->kind() != SmoKind::kDropTable) {
        continue;
      }
      bool all_targets_dead = true;
      for (TvId t : inst.targets) {
        if (!dead_tvs.count(t)) all_targets_dead = false;
      }
      if (inst.smo->kind() == SmoKind::kDropTable) {
        // DROP TABLE has no targets; it dies with the dropped version iff
        // the version introduced it. Approximation: it dies when its source
        // survives but the drop is no longer referenced — we keep it unless
        // its source is dead too (conservative and safe).
        all_targets_dead = false;
        for (TvId s : inst.sources) {
          if (dead_tvs.count(s)) all_targets_dead = true;
        }
      }
      if (!all_targets_dead) continue;
      if (inst.materialized && inst.smo->kind() != SmoKind::kCreateTable) {
        return Status::InvalidState(
            "cannot drop schema version " + name + ": data is materialized " +
            "in its table versions (SMO: " + inst.smo->ToString() +
            "); MATERIALIZE a surviving schema version first");
      }
      dead_smos.insert(smo_id);
      changed = true;
    }
  }

  for (TvId id : dead_tvs) {
    for (SmoId smo_id : std::vector<SmoId>(tvs_.at(id).outgoing)) {
      if (!dead_smos.count(smo_id)) {
        return Status::Internal("GC invariant violated: live outgoing SMO");
      }
    }
    result.removed_tables.push_back(id);
  }
  for (SmoId id : dead_smos) result.removed_smos.push_back(id);

  // Commit: unlink and erase.
  versions_.erase(Key(name));
  for (SmoId id : dead_smos) {
    const SmoInstance& inst = smos_.at(id);
    for (TvId src : inst.sources) {
      if (dead_tvs.count(src)) continue;
      auto& out = tvs_.at(src).outgoing;
      out.erase(std::remove(out.begin(), out.end(), id), out.end());
    }
  }
  for (TvId id : dead_tvs) tvs_.erase(id);
  for (SmoId id : dead_smos) smos_.erase(id);
  ++structure_epoch_;
  ++materialization_epoch_;
  return result;
}

bool VersionCatalog::HasVersion(const std::string& name) const {
  return versions_.count(Key(name)) > 0;
}

Result<const SchemaVersionInfo*> VersionCatalog::FindVersion(
    const std::string& name) const {
  auto it = versions_.find(Key(name));
  if (it == versions_.end()) {
    return Status::NotFound("schema version " + name);
  }
  return &it->second;
}

Status VersionCatalog::SetLintWarnings(const std::string& version,
                                       std::vector<std::string> warnings) {
  auto it = versions_.find(Key(version));
  if (it == versions_.end()) {
    return Status::NotFound("schema version " + version);
  }
  it->second.lint_warnings = std::move(warnings);
  return Status::OK();
}

std::vector<std::string> VersionCatalog::VersionNames() const {
  std::vector<std::string> out;
  out.reserve(versions_.size());
  for (const auto& [key, info] : versions_) {
    (void)key;
    out.push_back(info.name);
  }
  return out;
}

std::vector<std::string> VersionCatalog::VersionNamesInOrder() const {
  std::vector<const SchemaVersionInfo*> infos;
  infos.reserve(versions_.size());
  for (const auto& [key, info] : versions_) {
    (void)key;
    infos.push_back(&info);
  }
  std::sort(infos.begin(), infos.end(),
            [](const SchemaVersionInfo* a, const SchemaVersionInfo* b) {
              return a->order < b->order;
            });
  std::vector<std::string> out;
  out.reserve(infos.size());
  for (const SchemaVersionInfo* info : infos) out.push_back(info->name);
  return out;
}

Result<TvId> VersionCatalog::ResolveTable(const std::string& version,
                                          const std::string& table) const {
  INVERDA_ASSIGN_OR_RETURN(const SchemaVersionInfo* info,
                           FindVersion(version));
  auto it = info->tables.find(Key(table));
  if (it == info->tables.end()) {
    return Status::NotFound("table " + table + " not in schema version " +
                            version);
  }
  return it->second;
}

std::vector<TvId> VersionCatalog::AllTableVersions() const {
  std::vector<TvId> out;
  out.reserve(tvs_.size());
  for (const auto& [id, tv] : tvs_) {
    (void)tv;
    out.push_back(id);
  }
  return out;
}

std::vector<SmoId> VersionCatalog::AllSmos() const {
  std::vector<SmoId> out;
  out.reserve(smos_.size());
  for (const auto& [id, inst] : smos_) {
    (void)inst;
    out.push_back(id);
  }
  return out;
}

std::string VersionCatalog::TvLabel(TvId id) const {
  const TableVersion& tv = tvs_.at(id);
  // Count same-named predecessors to produce "Task-0", "Task-1", ...
  int generation = 0;
  for (const auto& [other_id, other] : tvs_) {
    if (other_id < id && EqualsIgnoreCase(other.name, tv.name)) ++generation;
  }
  return tv.name + "-" + std::to_string(generation);
}

std::string VersionCatalog::DataTableName(TvId id) const {
  return "d" + std::to_string(id) + "_" + ToLower(tvs_.at(id).name);
}

std::string VersionCatalog::AuxTableName(SmoId id,
                                         const std::string& short_name) const {
  return "a" + std::to_string(id) + "_" + short_name;
}

}  // namespace inverda
