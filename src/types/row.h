#ifndef INVERDA_TYPES_ROW_H_
#define INVERDA_TYPES_ROW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "types/value.h"

namespace inverda {

/// The payload part of a tuple: one Value per schema column, positional.
/// The InVerDa-managed identifier `p` is *not* part of the Row — physical
/// tables key their rows by it (see storage::Table), which realizes the
/// paper's "all tables have an attribute p" convention.
using Row = std::vector<Value>;

/// Equality of two payload rows (positional, Value::operator==).
bool RowsEqual(const Row& a, const Row& b);

/// Combined hash of a payload row; consistent with RowsEqual.
size_t HashRow(const Row& row);

/// "(v1, v2, ...)" for debugging.
std::string RowToString(const Row& row);

/// A keyed tuple as exchanged between mapping kernels: identifier + payload.
struct KeyedRow {
  int64_t key = 0;
  Row row;
};

/// Hash functor over Row, for unordered containers keyed by payload
/// (e.g. the id-reuse memo of identifier-generating SMOs).
struct RowHash {
  size_t operator()(const Row& row) const { return HashRow(row); }
};

}  // namespace inverda

#endif  // INVERDA_TYPES_ROW_H_
