#ifndef INVERDA_TYPES_ROW_BATCH_H_
#define INVERDA_TYPES_ROW_BATCH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "types/row.h"
#include "util/status.h"

namespace inverda {

/// A columnar batch of keyed rows: one value vector per payload column plus
/// the key vector, with an optional selection bitmap. This is the unit the
/// batch execution path moves between mapping kernels — where the
/// row-at-a-time path pays a map insert and a Row allocation per tuple per
/// chain hop, the batch path applies projection-shaped SMOs (ADD/DROP
/// COLUMN, RENAME, DECOMPOSE projections) as whole-column operations:
/// dropping a column is one vector erase, adding one is one vector insert,
/// and filtering marks the selection bitmap without moving any data.
///
/// Invariants: every column vector has exactly size() entries; the
/// selection bitmap is either empty (all rows selected) or size() long.
/// Rows stay in ascending key order when filled from a Table or an ordered
/// scan — the batch itself never reorders.
class RowBatch {
 public:
  RowBatch() = default;

  /// A batch whose column count is known up front (e.g. from a plan's
  /// payload schema), so structure ops work even when no row is appended.
  explicit RowBatch(int num_columns) { SetNumColumns(num_columns); }

  /// Fixes the column count if not yet set (no-op when it already matches;
  /// fails on a conflicting width).
  Status SetNumColumns(int num_columns);
  bool has_columns() const { return num_columns_ >= 0; }
  int num_columns() const { return num_columns_ < 0 ? 0 : num_columns_; }

  /// Rows in the batch, including deselected ones.
  int64_t size() const { return static_cast<int64_t>(keys_.size()); }
  bool empty() const { return keys_.empty(); }

  void Reserve(int64_t rows);
  void Clear();

  /// Grows the batch to `rows` total rows (new keys zero, new cells NULL)
  /// so a parallel producer can fill keys and column cells in place via
  /// set_key()/column() — distinct row ranges may be written from distinct
  /// threads. Requires a fixed column count, no selection bitmap, and
  /// `rows` >= size().
  Status GrowRows(int64_t rows);

  /// Writes key `i` in place (pairs with GrowRows).
  void set_key(int64_t i, int64_t key) {
    keys_[static_cast<size_t>(i)] = key;
  }

  /// Appends one keyed row (sets the column count from the first row when
  /// still unset). Fails when the row width conflicts.
  Status AppendRow(int64_t key, const Row& row);
  Status AppendRow(int64_t key, Row&& row);

  const std::vector<int64_t>& keys() const { return keys_; }
  int64_t key_at(int64_t i) const { return keys_[static_cast<size_t>(i)]; }

  std::vector<Value>& column(int i) { return columns_[static_cast<size_t>(i)]; }
  const std::vector<Value>& column(int i) const {
    return columns_[static_cast<size_t>(i)];
  }

  /// Gathers row `i` back into row-major form (selection not consulted).
  Row RowAt(int64_t i) const;

  // --- columnar structure ops (O(columns), zero per-row work) --------------

  /// Removes the column at `index` (vector-of-columns erase; no row is
  /// touched).
  void RemoveColumn(int index);

  /// Inserts `values` as a new column at `index`. `values` must have
  /// exactly size() entries.
  Status InsertColumn(int index, std::vector<Value> values);

  /// Takes over `src`'s keys and selection bitmap and moves the columns
  /// selected by `indexes` (in order; entries must be distinct and in
  /// range) into this batch. The batch must be empty and its width unset
  /// or equal to indexes.size(). This is the whole-batch form of a
  /// projection: O(columns) vector moves, no per-row work.
  Status AssignProjection(RowBatch&& src, const std::vector<int>& indexes);

  /// Stably sorts the rows by key, carrying columns and the selection
  /// bitmap along. Batch producers that append out-of-order tail rows
  /// (aux-table leftovers) use this to restore the ordered-scan invariant.
  void SortByKey();

  // --- selection bitmap ------------------------------------------------------

  /// True when some rows are deselected (the bitmap is materialized).
  bool has_selection() const { return !selected_.empty(); }
  bool selected(int64_t i) const {
    return selected_.empty() || selected_[static_cast<size_t>(i)] != 0;
  }

  /// Marks row `i` as filtered out. Lazily materializes the bitmap — a
  /// batch that filters nothing never allocates it.
  void Deselect(int64_t i);

  int64_t selected_count() const;

  /// Physically drops deselected rows and clears the bitmap.
  void Compact();

  /// Calls `fn(key, row)` for every selected row, in batch order. Each row
  /// is gathered once (row-major callers; columnar consumers should read
  /// the columns directly).
  void ForEach(const std::function<void(int64_t, const Row&)>& fn) const;

 private:
  int num_columns_ = -1;  // -1: not yet fixed
  std::vector<int64_t> keys_;
  std::vector<std::vector<Value>> columns_;  // [column][row]
  std::vector<uint8_t> selected_;            // empty = all selected
};

}  // namespace inverda

#endif  // INVERDA_TYPES_ROW_BATCH_H_
