#include "types/row.h"

namespace inverda {

bool RowsEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

size_t HashRow(const Row& row) {
  size_t h = 1469598103934665603ULL;
  for (const Value& v : row) {
    h ^= v.Hash();
    h *= 1099511628211ULL;
  }
  return h;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace inverda
