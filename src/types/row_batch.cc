#include "types/row_batch.h"

#include <algorithm>
#include <numeric>
#include <utility>

namespace inverda {

Status RowBatch::SetNumColumns(int num_columns) {
  if (num_columns < 0) {
    return Status::Internal("negative batch width");
  }
  if (num_columns_ == num_columns) return Status::OK();
  if (num_columns_ >= 0) {
    return Status::Internal("batch width already fixed at " +
                            std::to_string(num_columns_) + ", got " +
                            std::to_string(num_columns));
  }
  num_columns_ = num_columns;
  columns_.resize(static_cast<size_t>(num_columns));
  return Status::OK();
}

void RowBatch::Reserve(int64_t rows) {
  keys_.reserve(static_cast<size_t>(rows));
  for (std::vector<Value>& col : columns_) {
    col.reserve(static_cast<size_t>(rows));
  }
}

Status RowBatch::GrowRows(int64_t rows) {
  if (num_columns_ < 0) {
    return Status::Internal("GrowRows on a batch with unset width");
  }
  if (!selected_.empty()) {
    return Status::Internal("GrowRows on a batch with a selection bitmap");
  }
  if (rows < size()) {
    return Status::Internal("GrowRows would shrink the batch");
  }
  keys_.resize(static_cast<size_t>(rows), 0);
  for (std::vector<Value>& col : columns_) {
    col.resize(static_cast<size_t>(rows));
  }
  return Status::OK();
}

void RowBatch::Clear() {
  keys_.clear();
  for (std::vector<Value>& col : columns_) col.clear();
  selected_.clear();
}

Status RowBatch::AppendRow(int64_t key, const Row& row) {
  if (num_columns_ < 0) {
    INVERDA_RETURN_IF_ERROR(SetNumColumns(static_cast<int>(row.size())));
  } else if (static_cast<int>(row.size()) != num_columns_) {
    return Status::Internal("batch row width " + std::to_string(row.size()) +
                            " != " + std::to_string(num_columns_));
  }
  keys_.push_back(key);
  for (size_t c = 0; c < row.size(); ++c) columns_[c].push_back(row[c]);
  if (!selected_.empty()) selected_.push_back(1);
  return Status::OK();
}

Status RowBatch::AppendRow(int64_t key, Row&& row) {
  if (num_columns_ < 0) {
    INVERDA_RETURN_IF_ERROR(SetNumColumns(static_cast<int>(row.size())));
  } else if (static_cast<int>(row.size()) != num_columns_) {
    return Status::Internal("batch row width " + std::to_string(row.size()) +
                            " != " + std::to_string(num_columns_));
  }
  keys_.push_back(key);
  for (size_t c = 0; c < row.size(); ++c) {
    columns_[c].push_back(std::move(row[c]));
  }
  if (!selected_.empty()) selected_.push_back(1);
  return Status::OK();
}

Row RowBatch::RowAt(int64_t i) const {
  Row out;
  out.reserve(columns_.size());
  for (const std::vector<Value>& col : columns_) {
    out.push_back(col[static_cast<size_t>(i)]);
  }
  return out;
}

void RowBatch::RemoveColumn(int index) {
  if (index < 0 || index >= num_columns()) return;
  columns_.erase(columns_.begin() + index);
  --num_columns_;
}

Status RowBatch::InsertColumn(int index, std::vector<Value> values) {
  if (num_columns_ < 0) num_columns_ = 0;
  if (index < 0 || index > num_columns_) {
    return Status::Internal("column index " + std::to_string(index) +
                            " out of range for width " +
                            std::to_string(num_columns_));
  }
  if (static_cast<int64_t>(values.size()) != size()) {
    return Status::Internal("column of " + std::to_string(values.size()) +
                            " values inserted into batch of " +
                            std::to_string(size()) + " rows");
  }
  columns_.insert(columns_.begin() + index, std::move(values));
  ++num_columns_;
  return Status::OK();
}

Status RowBatch::AssignProjection(RowBatch&& src,
                                  const std::vector<int>& indexes) {
  if (!empty()) {
    return Status::Internal("projection into a non-empty batch");
  }
  INVERDA_RETURN_IF_ERROR(SetNumColumns(static_cast<int>(indexes.size())));
  for (size_t i = 0; i < indexes.size(); ++i) {
    if (indexes[i] < 0 || indexes[i] >= src.num_columns()) {
      return Status::Internal("projection index " +
                              std::to_string(indexes[i]) +
                              " out of range for width " +
                              std::to_string(src.num_columns()));
    }
    columns_[i] = std::move(src.columns_[static_cast<size_t>(indexes[i])]);
  }
  keys_ = std::move(src.keys_);
  selected_ = std::move(src.selected_);
  return Status::OK();
}

void RowBatch::SortByKey() {
  const size_t n = keys_.size();
  if (n < 2 || std::is_sorted(keys_.begin(), keys_.end())) return;
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), size_t{0});
  std::stable_sort(perm.begin(), perm.end(),
                   [&](size_t a, size_t b) { return keys_[a] < keys_[b]; });
  std::vector<int64_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = keys_[perm[i]];
  keys_.swap(keys);
  for (std::vector<Value>& col : columns_) {
    std::vector<Value> sorted(n);
    for (size_t i = 0; i < n; ++i) sorted[i] = std::move(col[perm[i]]);
    col.swap(sorted);
  }
  if (!selected_.empty()) {
    std::vector<uint8_t> sel(n);
    for (size_t i = 0; i < n; ++i) sel[i] = selected_[perm[i]];
    selected_.swap(sel);
  }
}

void RowBatch::Deselect(int64_t i) {
  if (selected_.empty()) selected_.assign(keys_.size(), 1);
  selected_[static_cast<size_t>(i)] = 0;
}

int64_t RowBatch::selected_count() const {
  if (selected_.empty()) return size();
  int64_t n = 0;
  for (uint8_t s : selected_) n += s != 0 ? 1 : 0;
  return n;
}

void RowBatch::Compact() {
  if (selected_.empty()) return;
  size_t w = 0;
  for (size_t r = 0; r < keys_.size(); ++r) {
    if (selected_[r] == 0) continue;
    if (w != r) {
      keys_[w] = keys_[r];
      for (std::vector<Value>& col : columns_) col[w] = std::move(col[r]);
    }
    ++w;
  }
  keys_.resize(w);
  for (std::vector<Value>& col : columns_) col.resize(w);
  selected_.clear();
}

void RowBatch::ForEach(
    const std::function<void(int64_t, const Row&)>& fn) const {
  for (int64_t i = 0; i < size(); ++i) {
    if (!selected(i)) continue;
    fn(keys_[static_cast<size_t>(i)], RowAt(i));
  }
}

}  // namespace inverda
