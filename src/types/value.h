#ifndef INVERDA_TYPES_VALUE_H_
#define INVERDA_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace inverda {

/// Column data types of the relational substrate.
enum class DataType {
  kInt64,
  kDouble,
  kString,
  kBool,
};

/// Human-readable type name ("INT", "DOUBLE", "TEXT", "BOOL").
const char* DataTypeName(DataType type);

/// A single cell value. Null (the paper's ω marker, used e.g. by the outer
/// join that inverts DECOMPOSE) is representable for every type.
///
/// Comparison semantics follow SQL's two-valued simplification used by the
/// paper's Datalog rules: null is equal to null and distinct from every
/// non-null value, so tuple round trips preserve ω exactly.
class Value {
 public:
  /// Null (ω).
  Value() : data_(NullTag{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Data(v)); }
  static Value Double(double v) { return Value(Data(v)); }
  static Value String(std::string v) { return Value(Data(std::move(v))); }
  static Value Bool(bool v) { return Value(Data(v)); }

  bool is_null() const { return std::holds_alternative<NullTag>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }

  /// Preconditions: the matching is_*() holds.
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  bool AsBool() const { return std::get<bool>(data_); }

  /// Numeric view: int64 or double widened to double. Precondition:
  /// is_int() || is_double().
  double AsNumeric() const {
    return is_int() ? static_cast<double>(AsInt()) : AsDouble();
  }

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order used for deterministic output: null < bool < numeric <
  /// string; numerics compare by value across int/double.
  bool operator<(const Value& other) const;

  /// Rendering for debug output and SQL literals ("NULL", 42, 'text', ...).
  std::string ToString() const;

  /// Stable hash, consistent with operator== (int and double that compare
  /// equal via == are distinct variants and hash independently).
  size_t Hash() const;

 private:
  struct NullTag {
    bool operator==(const NullTag&) const { return true; }
  };
  using Data = std::variant<NullTag, int64_t, double, std::string, bool>;

  explicit Value(Data data) : data_(std::move(data)) {}

  Data data_;
};

}  // namespace inverda

#endif  // INVERDA_TYPES_VALUE_H_
