#include "types/value.h"

#include <functional>

namespace inverda {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "INT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "TEXT";
    case DataType::kBool:
      return "BOOL";
  }
  return "UNKNOWN";
}

namespace {

// Rank for cross-type ordering: null < bool < numeric < string.
int TypeRank(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_bool()) return 1;
  if (v.is_int() || v.is_double()) return 2;
  return 3;
}

}  // namespace

bool Value::operator<(const Value& other) const {
  int ra = TypeRank(*this), rb = TypeRank(other);
  if (ra != rb) return ra < rb;
  switch (ra) {
    case 0:
      return false;
    case 1:
      return AsBool() < other.AsBool();
    case 2:
      return AsNumeric() < other.AsNumeric();
    default:
      return AsString() < other.AsString();
  }
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) return std::to_string(AsDouble());
  if (is_bool()) return AsBool() ? "TRUE" : "FALSE";
  std::string out = "'";
  for (char c : AsString()) {
    out += c;
    if (c == '\'') out += '\'';  // SQL-style escaping.
  }
  out += "'";
  return out;
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b9;
  if (is_int()) return std::hash<int64_t>()(AsInt()) * 3;
  if (is_double()) return std::hash<double>()(AsDouble()) * 5;
  if (is_bool()) return AsBool() ? 0x51ed2701 : 0x1234567;
  return std::hash<std::string>()(AsString()) * 7;
}

}  // namespace inverda
