#ifndef INVERDA_UTIL_SHARD_H_
#define INVERDA_UTIL_SHARD_H_

#include <cstdint>
#include <cstdlib>

namespace inverda {

/// Shard routing for the sharded row stores (docs/storage.md): every
/// physical table partitions its rows by hash of the InVerDa key `p` into
/// a fixed number of shards, each an independent hash map behind its own
/// latch. The functions here are the single source of truth for the
/// key -> shard mapping and for the process-wide default shard count, so
/// storage, latching and the executor can never disagree on routing.

/// Hard cap on the shard count: keeps (table, shard) latch footprints
/// within reason (ThreadSanitizer's deadlock detector tracks at most 64
/// locks per thread) and bounds per-table memory overhead.
inline constexpr int kMaxShards = 64;

/// Clamps an arbitrary requested shard count into the supported range.
inline int ClampShardCount(int shards) {
  if (shards < 1) return 1;
  if (shards > kMaxShards) return kMaxShards;
  return shards;
}

/// The process-wide default shard count, read once from INVERDA_SHARDS.
/// Unset (or <= 1) means one shard — the degenerate case that preserves
/// the pre-sharding engine's behavior bit for bit.
inline int DefaultShardCount() {
  static const int shards = [] {
    const char* env = std::getenv("INVERDA_SHARDS");
    if (env == nullptr || env[0] == '\0') return 1;
    return ClampShardCount(std::atoi(env));
  }();
  return shards;
}

/// The shard of key `p` among `shards` shards. Fibonacci hashing spreads
/// the dense, sequence-drawn keys evenly; with one shard every key maps
/// to shard 0 (no hashing at all on the degenerate path).
inline int ShardOf(int64_t key, int shards) {
  if (shards <= 1) return 0;
  const uint64_t h =
      static_cast<uint64_t>(key) * UINT64_C(0x9E3779B97F4A7C15);
  // The top bits of the product are the well-mixed ones.
  return static_cast<int>((h >> 33) % static_cast<uint64_t>(shards));
}

}  // namespace inverda

#endif  // INVERDA_UTIL_SHARD_H_
