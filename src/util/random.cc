#include "util/random.h"

namespace inverda {

Random::Random(uint64_t seed) {
  // SplitMix64 expansion of the seed into two non-zero state words.
  auto splitmix = [&seed]() {
    seed += 0x9e3779b97f4a7c15ULL;
    uint64_t z = seed;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  s0_ = splitmix();
  s1_ = splitmix();
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

uint64_t Random::NextUint64() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Random::NextUint64(uint64_t bound) { return NextUint64() % bound; }

int64_t Random::NextInt64(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo + 1)));
}

double Random::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * (1.0 / 9007199254740992.0);
}

bool Random::NextBool(double p) { return NextDouble() < p; }

std::string Random::NextString(int length) {
  static const char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz";
  std::string out;
  out.reserve(static_cast<size_t>(length));
  for (int i = 0; i < length; ++i) {
    out += kAlphabet[NextUint64(26)];
  }
  return out;
}

}  // namespace inverda
