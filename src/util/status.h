#ifndef INVERDA_UTIL_STATUS_H_
#define INVERDA_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace inverda {

/// Error categories used across the library. Following the Arrow/RocksDB
/// idiom, errors are reported through Status/Result values rather than
/// exceptions.
enum class StatusCode {
  kOk,
  kInvalidArgument,   ///< Malformed input (bad BiDEL script, bad condition...)
  kNotFound,          ///< Unknown table, column, schema version, ...
  kAlreadyExists,     ///< Name collision (table version, schema version, ...)
  kInvalidState,      ///< Operation not allowed in the current state
  kConstraintViolation,  ///< Key collision or schema mismatch on write
  kInternal,          ///< Invariant violation inside the library
};

/// Returns a short human-readable name for `code` ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Success-or-error result of an operation without a payload.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message. Statuses are cheap to copy for OK and small for errors.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidState(std::string msg) {
    return Status(StatusCode::kInvalidState, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or an error Status. The value may only be accessed when ok().
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T&& operator*() && { return *std::move(value_); }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status to the caller.
#define INVERDA_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::inverda::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (false)

/// Evaluates a Result expression, propagating errors; on success assigns the
/// value to `lhs`.
#define INVERDA_ASSIGN_OR_RETURN(lhs, expr)      \
  INVERDA_ASSIGN_OR_RETURN_IMPL(                 \
      INVERDA_CONCAT_(_result_, __LINE__), lhs, expr)

#define INVERDA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value();

#define INVERDA_CONCAT_IMPL_(a, b) a##b
#define INVERDA_CONCAT_(a, b) INVERDA_CONCAT_IMPL_(a, b)

}  // namespace inverda

#endif  // INVERDA_UTIL_STATUS_H_
