#ifndef INVERDA_UTIL_THREAD_POOL_H_
#define INVERDA_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace inverda {

/// A small reusable worker pool for shard-parallel storage work (parallel
/// batch scans and write propagation over sharded tables). Workers are
/// started once and parked on a condition variable between jobs, so the
/// per-use cost is a wake-up, not a thread spawn.
///
/// The pool executes *pure storage work only*: tasks must not take latches,
/// must not re-enter the access layer, and must not submit to the pool
/// again. ParallelFor called from inside a worker (nested parallelism)
/// runs inline on the calling worker instead of deadlocking on the queue.
class ThreadPool {
 public:
  /// Starts `threads` workers. `threads <= 1` creates no workers at all:
  /// every ParallelFor runs inline on the caller — the degenerate pool
  /// that makes single-shard builds behave exactly like the unsharded
  /// engine.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return static_cast<int>(workers_.size()); }

  /// Calls `fn(i)` for every i in [0, n), fanning the indices out over the
  /// workers (the caller participates too). Blocks until every call
  /// returned. Runs entirely inline when n <= 1, when the pool has no
  /// workers, or when called from inside a pool worker. `fn` must be
  /// thread-safe across distinct indices and must not throw.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

  /// True when the calling thread is a pool worker (nested ParallelFor
  /// detection; exposed for assertions in callers).
  static bool InWorker();

 private:
  struct Job {
    const std::function<void(int64_t)>* fn = nullptr;
    std::atomic<int64_t> next{0};
    int64_t limit = 0;
    std::atomic<int64_t> done{0};
    int active = 0;  // workers inside RunJob; guarded by mu_
  };

  void WorkerLoop();
  static void RunJob(Job* job);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Job* job_ = nullptr;  // guarded by mu_; non-null while a job is posted
  uint64_t job_ticket_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// The process-wide pool the storage layer fans shard work out over. Sized
/// from INVERDA_SCAN_THREADS when set, otherwise from the hardware
/// concurrency, capped at 16 workers.
ThreadPool& ScanPool();

/// Replaces the global pool with one of `threads` workers. Not thread-safe
/// against concurrent ScanPool() users — benchmarks and tests only, called
/// while no storage work is in flight.
void ResetScanPoolForTest(int threads);

}  // namespace inverda

#endif  // INVERDA_UTIL_THREAD_POOL_H_
