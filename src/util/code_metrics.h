#ifndef INVERDA_UTIL_CODE_METRICS_H_
#define INVERDA_UTIL_CODE_METRICS_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace inverda {

/// Size metrics of a piece of code, as used by Table 3 of the paper:
/// lines of code, number of statements, and number of characters with
/// consecutive whitespace counted as one character.
struct CodeMetrics {
  int64_t lines_of_code = 0;
  int64_t statements = 0;
  int64_t characters = 0;
};

/// Measures `code`. Lines of code counts non-empty, non-comment lines
/// (SQL `--` and BiDEL comments); statements are counted by terminating
/// semicolons outside of string literals; characters collapse consecutive
/// whitespace to a single character, as in the paper's methodology.
CodeMetrics MeasureCode(std::string_view code);

/// Renders one Table-3-style row: "<loc> / <statements> / <chars>".
std::string FormatMetrics(const CodeMetrics& metrics);

}  // namespace inverda

#endif  // INVERDA_UTIL_CODE_METRICS_H_
