#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

namespace inverda {

namespace {

thread_local bool t_in_worker = false;

int DefaultPoolThreads() {
  const char* env = std::getenv("INVERDA_SCAN_THREADS");
  if (env != nullptr && env[0] != '\0') {
    return std::max(1, std::min(16, std::atoi(env)));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, std::min(16, static_cast<int>(hw)));
}

}  // namespace

ThreadPool::ThreadPool(int threads) {
  if (threads <= 1) return;
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::InWorker() { return t_in_worker; }

void ThreadPool::RunJob(Job* job) {
  for (;;) {
    const int64_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->limit) return;
    (*job->fn)(i);
    job->done.fetch_add(1, std::memory_order_release);
  }
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || (job_ != nullptr && job_ticket_ != seen);
    });
    if (stop_) return;
    seen = job_ticket_;
    Job* job = job_;
    ++job->active;
    lock.unlock();
    RunJob(job);
    lock.lock();
    if (--job->active == 0) done_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  // Inline paths: trivial jobs, a degenerate pool, nested parallelism
  // (a worker must never block on the queue it drains), or a job already
  // in flight (one fan-out at a time; a concurrent caller just does its
  // own work serially instead of queueing).
  if (n == 1 || workers_.empty() || InWorker()) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  Job job;
  job.fn = &fn;
  job.limit = n;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_ || job_ != nullptr) {
      lock.unlock();
      for (int64_t i = 0; i < n; ++i) fn(i);
      return;
    }
    job_ = &job;
    ++job_ticket_;
  }
  work_cv_.notify_all();
  RunJob(&job);  // the caller participates
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return job.active == 0 &&
           job.done.load(std::memory_order_acquire) == job.limit;
  });
  job_ = nullptr;
}

namespace {

std::mutex& GlobalPoolMu() {
  static std::mutex mu;
  return mu;
}

std::unique_ptr<ThreadPool>& GlobalPool() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool& ScanPool() {
  std::lock_guard<std::mutex> lock(GlobalPoolMu());
  std::unique_ptr<ThreadPool>& pool = GlobalPool();
  if (pool == nullptr) pool = std::make_unique<ThreadPool>(DefaultPoolThreads());
  return *pool;
}

void ResetScanPoolForTest(int threads) {
  std::lock_guard<std::mutex> lock(GlobalPoolMu());
  GlobalPool() = std::make_unique<ThreadPool>(std::max(1, threads));
}

}  // namespace inverda
