#include "util/strings.h"

#include <cctype>

namespace inverda {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string Indent(std::string_view text, int spaces) {
  std::string pad(static_cast<size_t>(spaces), ' ');
  std::string out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t pos = text.find('\n', start);
    std::string_view line = text.substr(
        start, pos == std::string_view::npos ? text.size() - start
                                             : pos - start);
    if (!line.empty()) out += pad;
    out += line;
    if (pos == std::string_view::npos) break;
    out += '\n';
    start = pos + 1;
  }
  return out;
}

}  // namespace inverda
