#ifndef INVERDA_UTIL_STRINGS_H_
#define INVERDA_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace inverda {

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` at every occurrence of `sep` (no trimming, keeps empties).
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// ASCII lower-casing (identifiers in BiDEL are case-insensitive).
std::string ToLower(std::string_view text);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True if `text` starts with `prefix` (case-sensitive).
bool StartsWith(std::string_view text, std::string_view prefix);

/// Indents every line of `text` by `spaces` spaces.
std::string Indent(std::string_view text, int spaces);

}  // namespace inverda

#endif  // INVERDA_UTIL_STRINGS_H_
