#include "util/code_metrics.h"

#include <cctype>

#include "util/strings.h"

namespace inverda {

CodeMetrics MeasureCode(std::string_view code) {
  CodeMetrics m;
  // Lines of code: non-empty lines that are not pure comments.
  for (const std::string& raw : Split(code, '\n')) {
    std::string_view line = StripWhitespace(raw);
    if (line.empty()) continue;
    if (StartsWith(line, "--")) continue;
    ++m.lines_of_code;
  }
  // Characters: consecutive whitespace counted as one, leading/trailing
  // whitespace ignored; comment lines excluded to match the LoC rule.
  bool in_string = false;
  bool last_was_space = true;
  bool in_comment = false;
  for (size_t i = 0; i < code.size(); ++i) {
    char c = code[i];
    if (!in_string && !in_comment && c == '-' && i + 1 < code.size() &&
        code[i + 1] == '-') {
      in_comment = true;
    }
    if (c == '\n') in_comment = false;
    if (in_comment) continue;
    if (c == '\'') in_string = !in_string;
    if (!in_string && std::isspace(static_cast<unsigned char>(c))) {
      if (!last_was_space) {
        ++m.characters;
        last_was_space = true;
      }
      continue;
    }
    last_was_space = false;
    ++m.characters;
    if (!in_string && c == ';') ++m.statements;
  }
  if (last_was_space && m.characters > 0) --m.characters;
  return m;
}

std::string FormatMetrics(const CodeMetrics& metrics) {
  return std::to_string(metrics.lines_of_code) + " / " +
         std::to_string(metrics.statements) + " / " +
         std::to_string(metrics.characters);
}

}  // namespace inverda
