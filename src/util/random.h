#ifndef INVERDA_UTIL_RANDOM_H_
#define INVERDA_UTIL_RANDOM_H_

#include <cstdint>
#include <string>

namespace inverda {

/// Deterministic pseudo-random generator (xorshift128+) used by workload
/// generators and property tests so every run is reproducible.
class Random {
 public:
  explicit Random(uint64_t seed);

  /// Uniform in [0, 2^64).
  uint64_t NextUint64();

  /// Uniform in [0, bound). Precondition: bound > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInt64(int64_t lo, int64_t hi);

  /// Uniform in [0, 1).
  double NextDouble();

  /// True with probability `p`.
  bool NextBool(double p);

  /// Random lowercase identifier-ish string of `length` characters.
  std::string NextString(int length);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace inverda

#endif  // INVERDA_UTIL_RANDOM_H_
