#include "verify/verifier.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "expr/domain.h"
#include "mapping/kernels.h"
#include "plan/fused.h"
#include "storage/latch.h"

namespace inverda {
namespace verify {
namespace {

// --- shared plumbing --------------------------------------------------------

void Emit(AnalysisReport* report, const char* rule, DiagSeverity severity,
          std::string message, std::string fixit = "") {
  Diagnostic d;
  d.rule = rule;
  d.severity = severity;
  d.message = std::move(message);
  d.fixit = std::move(fixit);
  report->diagnostics.push_back(std::move(d));
}

SmoSide Opposite(SmoSide side) {
  return side == SmoSide::kSource ? SmoSide::kTarget : SmoSide::kSource;
}

// The table version a hop derives (the planned / virtual side slot).
const TvRef& PlannedRef(const plan::PlanStep& hop) {
  return hop.ctx.side(hop.side)[static_cast<size_t>(hop.index)];
}

// Flattens a plan's step chain to original SMO hops (fused runs expanded).
std::vector<const plan::PlanStep*> FlattenHops(const plan::TvPlan& compiled) {
  std::vector<const plan::PlanStep*> hops;
  for (const plan::PlanStep& step : compiled.steps) {
    if (step.is_fused()) {
      for (const plan::PlanStep& sub : step.fused) hops.push_back(&sub);
    } else {
      hops.push_back(&step);
    }
  }
  return hops;
}

std::string HopLabel(const std::string& plan_label,
                     const plan::PlanStep& hop) {
  return "plan " + plan_label + ": hop [" + hop.kernel->name() + "] " +
         hop.smo_text;
}

// --- symbolic round-trip: column provenance (geometry) ----------------------

// Resolves the wide/narrow geometry of an ADD/DROP COLUMN hop directly from
// the SMO description (independent of mapping/ResolveColumnHop, so the
// verifier cross-checks the executable geometry rather than repeating it).
struct ColumnGeometry {
  SmoSide wide_side = SmoSide::kSource;
  const TableSchema* wide = nullptr;
  const TableSchema* narrow = nullptr;
  int b_index = 0;
  const Expression* fn = nullptr;
  std::string column;
};

Result<ColumnGeometry> ResolveColumnGeometry(const SmoContext& ctx) {
  ColumnGeometry g;
  if (ctx.smo->kind() == SmoKind::kAddColumn) {
    const auto* smo = static_cast<const AddColumnSmo*>(ctx.smo);
    g.wide_side = SmoSide::kTarget;
    g.fn = smo->fn().get();
    g.column = smo->column();
  } else if (ctx.smo->kind() == SmoKind::kDropColumn) {
    const auto* smo = static_cast<const DropColumnSmo*>(ctx.smo);
    g.wide_side = SmoSide::kSource;
    g.fn = smo->default_fn().get();
    g.column = smo->column();
  } else {
    return Status::Internal("column kernel bound to non-column SMO: " +
                            ctx.smo->ToString());
  }
  g.wide = ctx.side(g.wide_side)[0].schema;
  g.narrow = ctx.side(Opposite(g.wide_side))[0].schema;
  std::optional<int> idx = g.wide->FindColumn(g.column);
  if (!idx) {
    return Status::Internal("column " + g.column + " missing from wide side " +
                            g.wide->ToString());
  }
  g.b_index = *idx;
  return g;
}

// Checks that the planned version's payload columns are recoverable from
// the data side by the hop's kernel: the per-kernel column provenance rules
// over the abstract column domain. Violations are miscompiles (the step's
// contexts disagree with the SMO's own schema derivation).
void CheckHopGeometry(const std::string& plan_label,
                      const plan::PlanStep& hop, AnalysisReport* report) {
  const SmoContext& ctx = hop.ctx;
  const std::string kernel = hop.kernel->name();
  const std::string where = HopLabel(plan_label, hop);

  auto broken = [&](const std::string& detail) {
    Emit(report, "plan-chain-broken", DiagSeverity::kError,
         where + ": " + detail);
  };

  if (kernel == "identity") {
    const TableSchema* planned = ctx.side(hop.side)[0].schema;
    const TableSchema* data = ctx.side(Opposite(hop.side))[0].schema;
    if (planned->num_columns() != data->num_columns()) {
      broken("identity hop changes payload width (" +
             std::to_string(data->num_columns()) + " -> " +
             std::to_string(planned->num_columns()) + ")");
      return;
    }
    if (ctx.smo->kind() == SmoKind::kRenameColumn) {
      // Positions are preserved; exactly the renamed column may differ.
      const auto* smo = static_cast<const RenameColumnSmo*>(ctx.smo);
      const auto& src = ctx.sources[0].schema->columns();
      const auto& tgt = ctx.targets[0].schema->columns();
      for (size_t i = 0; i < src.size(); ++i) {
        if (src[i].name == tgt[i].name) continue;
        if (src[i].name != smo->from() || tgt[i].name != smo->to()) {
          broken("rename-column hop moves column " + src[i].name);
          return;
        }
      }
    }
    return;
  }

  if (kernel == "column") {
    Result<ColumnGeometry> g = ResolveColumnGeometry(ctx);
    if (!g.ok()) {
      broken(g.status().message());
      return;
    }
    if (g->wide->num_columns() != g->narrow->num_columns() + 1) {
      broken("wide/narrow widths differ by " +
             std::to_string(g->wide->num_columns() -
                            g->narrow->num_columns()) +
             ", expected 1");
      return;
    }
    if (g->narrow->FindColumn(g->column)) {
      broken("column " + g->column + " present on the narrow side");
      return;
    }
    // Erasing b from the wide column list must yield the narrow list: every
    // other column's provenance is positional identity.
    const auto& wide_cols = g->wide->columns();
    const auto& narrow_cols = g->narrow->columns();
    size_t n = 0;
    for (size_t w = 0; w < wide_cols.size(); ++w) {
      if (static_cast<int>(w) == g->b_index) continue;
      if (n >= narrow_cols.size() ||
          wide_cols[w].name != narrow_cols[n].name) {
        broken("column provenance broken at wide position " +
               std::to_string(w) + " (" + wide_cols[w].name + ")");
        return;
      }
      ++n;
    }
    return;
  }

  if (kernel == "partition") {
    // SPLIT/MERGE: all side tables are union-compatible, so every payload
    // column survives both directions positionally.
    const TableSchema* reference = ctx.sources[0].schema;
    for (const std::vector<TvRef>* side : {&ctx.sources, &ctx.targets}) {
      for (const TvRef& ref : *side) {
        if (ref.schema->columns() != reference->columns()) {
          broken("partition sides are not union-compatible: " +
                 ref.schema->ToString() + " vs " + reference->ToString());
          return;
        }
      }
    }
    return;
  }

  if (kernel == "vertical-pk" || kernel == "join-pk" || kernel == "fk" ||
      kernel == "cond") {
    if (ctx.smo->kind() == SmoKind::kDecompose) {
      // The named column lists must partition the combined payload; that is
      // the provenance proof for both directions (ON FK adds the generated
      // fk column to S, which maps to identifier state, not payload).
      const auto* smo = static_cast<const DecomposeSmo*>(ctx.smo);
      const TableSchema* combined = ctx.sources[0].schema;
      std::set<std::string> seen;
      size_t named = 0;
      for (const std::vector<std::string>* cols :
           {&smo->s_columns(), &smo->t_columns()}) {
        for (const std::string& name : *cols) {
          ++named;
          if (!combined->FindColumn(name)) {
            broken("decomposed column " + name +
                   " missing from combined payload " + combined->ToString());
            return;
          }
          if (!seen.insert(name).second) {
            broken("decomposed column " + name + " named twice");
            return;
          }
        }
      }
      if (smo->has_t() &&
          named != static_cast<size_t>(combined->num_columns())) {
        broken("decomposition drops columns: " + std::to_string(named) +
               " named of " + std::to_string(combined->num_columns()));
        return;
      }
    } else if (ctx.smo->kind() == SmoKind::kJoin &&
               (kernel == "vertical-pk" || kernel == "join-pk")) {
      // JOIN ON PK: the join result carries both source payloads.
      const TableSchema* joined = ctx.targets[0].schema;
      int sources_width = ctx.sources[0].schema->num_columns() +
                          ctx.sources[1].schema->num_columns();
      if (joined->num_columns() != sources_width) {
        broken("join payload width " +
               std::to_string(joined->num_columns()) + " != sources " +
               std::to_string(sources_width));
        return;
      }
    }
    return;
  }

  broken("unknown kernel in compiled plan");
}

// --- symbolic round-trip: information obligations ---------------------------

// Human description of the information channel each auxiliary table backs.
std::string AuxChannel(const std::string& short_name) {
  if (short_name == "B") return "explicit b-values written on the wide side";
  if (short_name == "T_prime") {
    return "tuples matching neither partition condition";
  }
  if (short_name == "R_minus" || short_name == "S_minus") {
    return "twin deletions (a tuple removed from one partition only)";
  }
  if (short_name == "S_plus") return "diverged twin payloads";
  if (short_name == "R_star" || short_name == "S_star") {
    return "tuples kept despite violating their partition condition";
  }
  if (short_name == "IDR" || short_name == "ID") {
    return "generated-identifier stability across derivations";
  }
  if (short_name == "L_plus" || short_name == "R_plus") {
    return "tuples unmatched by the inner join";
  }
  return "information the data side cannot carry";
}

// Whether the loss case an aux table guards is reachable, decided by the
// analyzer's small-domain witness engine over the partition conditions.
// kNo means the obligation is vacuous (provably no row can exercise the
// channel); non-partition aux channels are reachable unconditionally.
// On kYes, `witness` (when found) carries a concrete exercising row.
Tri ChannelReachable(const SmoContext& ctx, const std::string& short_name,
                     Row* witness) {
  ExprPtr c_r;
  ExprPtr c_s;
  const TableSchema* payload = nullptr;
  if (ctx.smo->kind() == SmoKind::kSplit) {
    const auto* smo = static_cast<const SplitSmo*>(ctx.smo);
    c_r = smo->r_cond();
    if (smo->has_s()) c_s = smo->s_cond();
    payload = ctx.sources[0].schema;  // union side of a SPLIT
  } else if (ctx.smo->kind() == SmoKind::kMerge) {
    const auto* smo = static_cast<const MergeSmo*>(ctx.smo);
    c_r = smo->r_cond();
    c_s = smo->s_cond();
    payload = ctx.targets[0].schema;  // union side of a MERGE
  } else {
    return Tri::kYes;  // id tables, B, join preserves: always load-bearing
  }

  std::vector<ExprPtr> pos;
  std::vector<ExprPtr> neg;
  if (short_name == "R_star") {
    neg = {c_r};  // a tuple kept in R despite violating cR
  } else if (short_name == "S_star") {
    neg = {c_s};
  } else if (short_name == "R_minus") {
    pos = {c_r};  // a twin deletion needs a tuple S would surface into R
  } else if (short_name == "S_minus") {
    pos = {c_s};
  } else if (short_name == "T_prime") {
    neg.push_back(c_r);  // the partition gap
    if (c_s) neg.push_back(c_s);
  } else {
    return Tri::kYes;  // S_plus: twin divergence needs no condition
  }
  return FindWitness(*payload, pos, neg, witness);
}

// Discharges the hop's information obligations: every auxiliary channel the
// current materialization requires must be physically present — or its loss
// case proven unreachable by the witness engine. This is the Table 2
// argument, applied per compiled hop instead of per BiDEL statement.
void CheckHopObligations(const VersionCatalog& catalog,
                         const std::string& plan_label,
                         const plan::PlanStep& hop, AnalysisReport* report,
                         ProofStats* stats) {
  if (!catalog.HasSmo(hop.smo)) {
    Emit(report, "plan-chain-broken", DiagSeverity::kError,
         HopLabel(plan_label, hop) + ": SMO instance " +
             std::to_string(hop.smo) + " no longer exists in the catalog");
    return;
  }
  const SmoInstance& inst = catalog.smo(hop.smo);
  const SmoSide data_side = hop.ctx.data_side();
  const std::string where = HopLabel(plan_label, hop);

  for (const AuxDef& def : inst.aux_defs) {
    if (!def.both_sides && def.side != data_side) continue;  // virtual-side
    if (stats != nullptr) ++stats->obligations;
    if (hop.ctx.aux_names.count(def.short_name) > 0) {
      if (stats != nullptr) ++stats->by_aux;
      continue;
    }
    // The channel has no physical backing; only a reachability refutation
    // can still prove the round trip.
    Row witness;
    switch (ChannelReachable(hop.ctx, def.short_name, &witness)) {
      case Tri::kNo:
        if (stats != nullptr) ++stats->by_witness;
        break;
      case Tri::kYes:
        Emit(report, "plan-roundtrip-loss", DiagSeverity::kError,
             where + ": auxiliary " + def.short_name + " (" +
                 AuxChannel(def.short_name) +
                 ") is not physical under the compiled materialization" +
                 (witness.empty()
                      ? ""
                      : "; witness row " + RowToString(witness) +
                            " exercises the lost channel"),
             "materialize a state that provisions " + def.short_name +
                 " or re-run the migration that dropped it");
        break;
      case Tri::kUnknown:
        Emit(report, "plan-roundtrip-undecidable", DiagSeverity::kWarning,
             where + ": auxiliary " + def.short_name + " (" +
                 AuxChannel(def.short_name) +
                 ") is not physical and the witness engine cannot refute "
                 "the loss case (condition outside the decidable fragment)");
        break;
    }
  }
}

// --- fusion translation validation ------------------------------------------

// One abstract column flowing through a composed program: either a column
// of the inner boundary payload or a value widened in by an aux/function
// channel. Two programs are column-wise equivalent iff they map the inner
// payload to the same sequence of these.
struct SymCol {
  bool widened = false;
  int inner_index = 0;  // !widened: position in the inner payload
  std::string aux;      // widened: physical aux table consulted
  const Expression* fn = nullptr;
  const TableSchema* narrow_schema = nullptr;

  bool operator==(const SymCol& other) const {
    return widened == other.widened && inner_index == other.inner_index &&
           aux == other.aux && fn == other.fn &&
           narrow_schema == other.narrow_schema;
  }

  std::string ToString() const {
    if (!widened) return "inner[" + std::to_string(inner_index) + "]";
    return "widen(aux=" + aux + ")";
  }
};

std::string SymColsToString(const std::vector<SymCol>& cols) {
  std::string out = "[";
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i > 0) out += ", ";
    out += cols[i].ToString();
  }
  return out + "]";
}

std::vector<SymCol> InnerColumns(int width) {
  std::vector<SymCol> cols(static_cast<size_t>(width));
  for (int i = 0; i < width; ++i) {
    cols[static_cast<size_t>(i)].inner_index = i;
  }
  return cols;
}

}  // namespace

AnalysisReport ValidateFusedStep(const plan::PlanStep& step,
                                 const std::string& plan_label) {
  AnalysisReport report;
  if (!step.is_fused() || step.program == nullptr) return report;
  const std::string where =
      "plan " + (plan_label.empty() ? "?" : plan_label) + ": fused[" +
      std::to_string(step.fused.size()) + "] " + step.smo_text;
  auto mismatch = [&](const std::string& detail) {
    Emit(&report, "fusion-mismatch", DiagSeverity::kError,
         where + ": " + detail,
         "fusion for this plan is rejected; the unfused kernel chain is the "
         "executable fallback");
  };

  // The inner boundary payload both compositions start from.
  const plan::PlanStep& innermost = step.fused.back();
  const TableSchema* inner_schema =
      innermost.ctx.side(Opposite(innermost.side))[0].schema;
  if (step.program->inner_width != inner_schema->num_columns()) {
    mismatch("program inner width " +
             std::to_string(step.program->inner_width) +
             " != inner payload width " +
             std::to_string(inner_schema->num_columns()));
    return report;
  }
  if (step.next != innermost.next) {
    mismatch("fused step reads inner version " + std::to_string(step.next) +
             " but the run terminates at " + std::to_string(innermost.next));
    return report;
  }

  // Reference composition: re-derive every hop's projection geometry from
  // the SMO descriptions (not from ResolveColumnHop, which the fusion pass
  // itself used) and apply it to the abstract inner payload.
  std::vector<SymCol> expected = InnerColumns(step.program->inner_width);
  for (auto it = step.fused.rbegin(); it != step.fused.rend(); ++it) {
    const plan::PlanStep& sub = *it;
    const std::string kernel = sub.kernel->name();
    if (kernel == "identity") continue;
    if (kernel != "column") {
      mismatch("non-projection kernel '" + kernel + "' inside a fused run");
      return report;
    }
    Result<ColumnGeometry> g = ResolveColumnGeometry(sub.ctx);
    if (!g.ok()) {
      mismatch(g.status().message());
      return report;
    }
    if (sub.side == g->wide_side) {
      // Deriving the wide side widens: b comes from the physical B aux per
      // key, falling back to the SMO's payload function.
      auto aux = sub.ctx.aux_names.find("B");
      if (aux == sub.ctx.aux_names.end()) {
        mismatch("widening hop " + sub.smo_text +
                 " has no physical B aux; the run must not have fused");
        return report;
      }
      if (g->b_index > static_cast<int>(expected.size())) {
        mismatch("widen index " + std::to_string(g->b_index) +
                 " out of range for width " +
                 std::to_string(expected.size()));
        return report;
      }
      SymCol widened;
      widened.widened = true;
      widened.aux = aux->second;
      widened.fn = g->fn;
      widened.narrow_schema = g->narrow;
      expected.insert(
          expected.begin() + static_cast<ptrdiff_t>(g->b_index), widened);
    } else {
      if (g->b_index >= static_cast<int>(expected.size())) {
        mismatch("narrow index " + std::to_string(g->b_index) +
                 " out of range for width " +
                 std::to_string(expected.size()));
        return report;
      }
      expected.erase(expected.begin() + static_cast<ptrdiff_t>(g->b_index));
    }
  }

  // Candidate composition: the compiled ColumnProgram, applied to the same
  // abstract payload.
  std::vector<SymCol> actual = InnerColumns(step.program->inner_width);
  for (size_t i = 0; i < step.program->ops.size(); ++i) {
    const plan::ColumnOp& op = step.program->ops[i];
    if (op.kind == plan::ColumnOp::Kind::kNarrow) {
      if (op.index < 0 || op.index >= static_cast<int>(actual.size())) {
        mismatch("op " + std::to_string(i) + ": narrow index " +
                 std::to_string(op.index) + " out of range for width " +
                 std::to_string(actual.size()));
        return report;
      }
      actual.erase(actual.begin() + static_cast<ptrdiff_t>(op.index));
    } else {
      if (op.index < 0 || op.index > static_cast<int>(actual.size())) {
        mismatch("op " + std::to_string(i) + ": widen index " +
                 std::to_string(op.index) + " out of range for width " +
                 std::to_string(actual.size()));
        return report;
      }
      SymCol widened;
      widened.widened = true;
      widened.aux = op.aux_table;
      widened.fn = op.fn;
      widened.narrow_schema = op.narrow_schema;
      actual.insert(actual.begin() + static_cast<ptrdiff_t>(op.index),
                    widened);
    }
  }

  const TableSchema* planned = PlannedRef(step.fused.front()).schema;
  if (static_cast<int>(expected.size()) != planned->num_columns()) {
    mismatch("reference composition yields width " +
             std::to_string(expected.size()) + " but the planned payload has " +
             std::to_string(planned->num_columns()) + " columns");
    return report;
  }
  if (actual != expected) {
    mismatch("composed program is not column-wise equivalent to the "
             "unfused kernel composition: program yields " +
             SymColsToString(actual) + ", kernels yield " +
             SymColsToString(expected));
  }
  return report;
}

// --- per-plan verification --------------------------------------------------

AnalysisReport VerifyPlan(const VersionCatalog& catalog,
                          const plan::TvPlan& compiled,
                          const VerifyOptions& options, ProofStats* stats) {
  AnalysisReport report;
  if (stats != nullptr) ++stats->plans;
  const std::string& label =
      compiled.label.empty() ? std::to_string(compiled.tv) : compiled.label;
  const bool current =
      compiled.epoch == catalog.materialization_epoch();
  if (!current) {
    Emit(&report, "plan-roundtrip-undecidable", DiagSeverity::kWarning,
         "plan " + label + ": compiled at materialization epoch " +
             std::to_string(compiled.epoch) + " but the catalog is at " +
             std::to_string(catalog.materialization_epoch()) +
             "; catalog-dependent obligations are skipped");
  }

  std::vector<const plan::PlanStep*> hops = FlattenHops(compiled);

  if (options.roundtrip) {
    // Chain continuity: each hop must derive exactly the version the
    // previous hop reads, ending at the plan's physical boundary.
    TvId expected_tv = compiled.tv;
    for (const plan::PlanStep* hop : hops) {
      if (stats != nullptr) ++stats->hops;
      TvId planned = PlannedRef(*hop).id;
      if (planned != expected_tv) {
        Emit(&report, "plan-chain-broken", DiagSeverity::kError,
             HopLabel(label, *hop) + ": derives table version " +
                 std::to_string(planned) + " but the chain expects " +
                 std::to_string(expected_tv));
        break;
      }
      expected_tv = hop->next;
    }
    if (current && compiled.full) {
      TvId boundary = hops.empty() ? compiled.tv : hops.back()->next;
      if (!catalog.IsPhysical(boundary)) {
        Emit(&report, "plan-chain-broken", DiagSeverity::kError,
             "plan " + label + ": chain terminates at " +
                 catalog.TvLabel(boundary) +
                 ", which is not physically stored");
      } else if (catalog.DataTableName(boundary) != compiled.data_table) {
        Emit(&report, "plan-chain-broken", DiagSeverity::kError,
             "plan " + label + ": data table " + compiled.data_table +
                 " does not back boundary version " +
                 catalog.TvLabel(boundary));
      }
    }

    for (const plan::PlanStep* hop : hops) {
      CheckHopGeometry(label, *hop, &report);
      if (current) {
        CheckHopObligations(catalog, label, *hop, &report, stats);
      }
    }

    if (current && compiled.full) {
      // The derive_mutates flag gates exclusive latching of the read path;
      // an understated flag would let an id-generating derivation run under
      // shared latches.
      bool mutates = false;
      for (SmoId id : compiled.traversed_smos) {
        if (!catalog.HasSmo(id)) continue;
        Result<const Kernel*> kernel = KernelForSmo(*catalog.smo(id).smo);
        if (kernel.ok() && (*kernel)->DeriveMutates()) mutates = true;
      }
      if (mutates && !compiled.derive_mutates) {
        Emit(&report, "plan-chain-broken", DiagSeverity::kError,
             "plan " + label +
                 ": traverses an id-generating kernel but derive_mutates is "
                 "false; reads would run under shared latches while mutating "
                 "identifier state");
      }

      // Footprint completeness: every physical table the executable chain
      // can touch must be in the latched footprint.
      std::set<std::string> declared(compiled.footprint.begin(),
                                     compiled.footprint.end());
      auto require = [&](const std::string& name, const std::string& role) {
        if (declared.count(name) > 0) return;
        Emit(&report, "plan-footprint-incomplete", DiagSeverity::kError,
             "plan " + label + ": " + role + " " + name +
                 " is missing from the latched footprint; accesses would "
                 "touch it without holding its latch");
      };
      if (!compiled.data_table.empty()) {
        require(compiled.data_table, "data table");
      }
      for (const plan::PlanStep* hop : hops) {
        for (const auto& [aux, physical] : hop->ctx.aux_names) {
          require(physical, "auxiliary table " + aux + " =");
        }
      }
    }
  }

  if (options.fusion) {
    for (const plan::PlanStep& step : compiled.steps) {
      if (!step.is_fused()) continue;
      if (stats != nullptr) ++stats->fused_steps;
      AnalysisReport fused = ValidateFusedStep(step, label);
      report.diagnostics.insert(report.diagnostics.end(),
                                fused.diagnostics.begin(),
                                fused.diagnostics.end());
    }
  }
  return report;
}

// --- static lock-order analysis ---------------------------------------------

AnalysisReport CheckLockOrder(const std::vector<LockSequence>& sequences,
                              size_t escalation_limit, ProofStats* stats) {
  return CheckLockOrder(sequences, escalation_limit, /*shards=*/1, stats);
}

AnalysisReport CheckLockOrder(const std::vector<LockSequence>& sequences,
                              size_t escalation_limit, int shards,
                              ProofStats* stats) {
  AnalysisReport report;
  const bool sharded = shards > 1;
  if (stats != nullptr) stats->lock_shards = sharded ? shards : 1;
  // Precedence graph: an edge a -> b for every consecutive acquisition,
  // remembering one inducing sequence per edge for the report. With
  // shards, each table node expands to the hierarchical chain a
  // whole-table reader acquires — table latch first, then every shard
  // latch ascending (`name#i`) — the maximal fine-grained sequence; the
  // writer and key-scoped orders are subsequences of it, so acyclicity of
  // the expanded graph covers them too.
  std::map<std::string, std::map<std::string, const std::string*>> graph;
  std::set<std::string> tables;
  std::vector<std::string> expanded;
  for (const LockSequence& seq : sequences) {
    if (stats != nullptr) ++stats->lock_sequences;
    const size_t per_table = sharded ? 1 + static_cast<size_t>(shards) : 1;
    if (seq.tables.size() > escalation_limit ||
        seq.tables.size() * per_table > TableLatchSet::kShardLatchBudget) {
      // Escalated to the exclusive global latch: no per-table order taken.
      // The budget term mirrors TableLatchSet::Acquire's sharded rule.
      if (stats != nullptr) ++stats->lock_escalations;
      continue;
    }
    const std::vector<std::string>* names = &seq.tables;
    if (sharded) {
      expanded.clear();
      expanded.reserve(seq.tables.size() * per_table);
      for (const std::string& name : seq.tables) {
        expanded.push_back(name);
        for (int i = 0; i < shards; ++i) {
          expanded.push_back(name + "#" + std::to_string(i));
        }
      }
      names = &expanded;
    }
    for (const std::string& name : *names) tables.insert(name);
    for (size_t i = 0; i + 1 < names->size(); ++i) {
      graph[(*names)[i]].emplace((*names)[i + 1], &seq.label);
    }
  }
  if (stats != nullptr) {
    stats->lock_tables = static_cast<int>(tables.size());
  }

  // A single global order exists iff the precedence graph is acyclic
  // (any topological order serves as the global order). Iterative
  // three-color DFS; on a back edge, reconstruct the cycle for the report.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> path;
  for (const auto& [start, unused] : graph) {
    (void)unused;
    if (color[start] != 0) continue;
    struct Frame {
      std::string node;
      std::map<std::string, const std::string*>::const_iterator next;
      bool entered = false;
    };
    std::vector<Frame> dfs;
    dfs.push_back({start, {}, false});
    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      if (!frame.entered) {
        frame.entered = true;
        color[frame.node] = 1;
        path.push_back(frame.node);
        auto it = graph.find(frame.node);
        frame.next = it == graph.end()
                         ? std::map<std::string,
                                    const std::string*>::const_iterator()
                         : it->second.begin();
      }
      auto edges = graph.find(frame.node);
      if (edges == graph.end() || frame.next == edges->second.end()) {
        color[frame.node] = 2;
        path.pop_back();
        dfs.pop_back();
        continue;
      }
      const std::string& to = frame.next->first;
      const std::string* via = frame.next->second;
      ++frame.next;
      if (color[to] == 1) {
        // Back edge: the grey path from `to` to the top is the cycle.
        std::string cycle;
        auto at = std::find(path.begin(), path.end(), to);
        for (auto p = at; p != path.end(); ++p) cycle += *p + " -> ";
        cycle += to;
        Emit(&report, "lock-order-violation", DiagSeverity::kError,
             "latch acquisition cycle: " + cycle + " (closing edge from " +
                 frame.node + " induced by " + *via +
                 "); no single global latch order exists, concurrent plans "
                 "can deadlock",
             "acquire per-table latches in one canonical (sorted) order "
             "for every plan");
        return report;
      }
      if (color[to] == 0) dfs.push_back({to, {}, false});
    }
  }
  return report;
}

AnalysisReport CheckMigrationLockOrder(std::vector<LockSequence> sequences,
                                       size_t escalation_limit, int shards,
                                       ProofStats* stats) {
  // Model the capture protocol: a top-level write during an online
  // migration acquires its plan's latches (canonical sorted order), and
  // the coordinator's delta-log lock is a leaf taken strictly after them
  // (OnWrite runs once the write's latches are released, and the
  // coordinator never holds an entry lock while acquiring anything else).
  // Appending the leaf to every sequence encodes exactly that claim; a
  // cycle through kMigrationCaptureLatch would mean some sequence acquires
  // a table latch after the capture lock — the deadlock the protocol
  // forbids. The limit is raised by one so the escalation set matches the
  // runtime's (the capture lock is not a table latch and never counts
  // toward escalation).
  for (LockSequence& seq : sequences) {
    seq.label += " +migration-capture";
    seq.tables.push_back(kMigrationCaptureLatch);
  }
  return CheckLockOrder(sequences, escalation_limit + 1, shards, stats);
}

// --- genealogy-wide verification --------------------------------------------

Result<VerifySummary> VerifyGenealogy(const VersionCatalog& catalog,
                                      const plan::PlanCompiler& compiler,
                                      const VerifyOptions& options) {
  VerifySummary summary;
  std::vector<LockSequence> sequences;
  for (TvId tv : catalog.AllTableVersions()) {
    INVERDA_ASSIGN_OR_RETURN(plan::TvPlan compiled, compiler.Compile(tv));
    AnalysisReport plan_report =
        VerifyPlan(catalog, compiled, options, &summary.stats);
    summary.report.diagnostics.insert(summary.report.diagnostics.end(),
                                      plan_report.diagnostics.begin(),
                                      plan_report.diagnostics.end());
    if (options.lock_order) {
      // The canonical acquisition order TableLatchSet produces: the
      // footprint deduplicated and sorted.
      LockSequence seq;
      seq.label = "plan " + compiled.label;
      seq.tables = compiled.footprint;
      std::sort(seq.tables.begin(), seq.tables.end());
      seq.tables.erase(std::unique(seq.tables.begin(), seq.tables.end()),
                       seq.tables.end());
      sequences.push_back(std::move(seq));
    }
  }
  if (options.lock_order) {
    AnalysisReport locks =
        CheckLockOrder(sequences, TableLatchSet::kEscalationLimit,
                       options.shards, &summary.stats);
    if (locks.diagnostics.empty()) {
      // Base order proven: additionally discharge the online-migration
      // acquisition pattern (every write may take the coordinator's
      // capture leaf after its latches). Stats stay those of the base
      // pass — this is the same sequence set extended by one leaf.
      locks = CheckMigrationLockOrder(std::move(sequences),
                                      TableLatchSet::kEscalationLimit,
                                      options.shards, /*stats=*/nullptr);
    }
    summary.report.diagnostics.insert(summary.report.diagnostics.end(),
                                      locks.diagnostics.begin(),
                                      locks.diagnostics.end());
  }
  return summary;
}

// --- rendering ---------------------------------------------------------------

std::string FormatVerifySummary(const VerifySummary& summary) {
  const ProofStats& s = summary.stats;
  std::ostringstream out;
  out << "plan verifier: " << s.plans << " plans, " << s.hops << " hops, "
      << s.fused_steps << " fused steps\n";
  out << "  round-trip obligations: " << s.obligations << " (aux-backed "
      << s.by_aux << ", witness-proven " << s.by_witness << ")\n";
  out << "  lock order: " << s.lock_sequences << " sequences over "
      << s.lock_tables << " tables, " << s.lock_escalations
      << " escalated to the global latch\n";
  if (s.lock_shards > 1) {
    out << "  lock model: " << s.lock_shards
        << " shards per table ((table, shard) latch expansion)\n";
  }
  if (summary.report.diagnostics.empty()) {
    out << "verified: round-trip, fusion and lock order hold for every "
           "compiled plan\n";
    return out.str();
  }
  out << FormatReport(summary.report, "");
  return out.str();
}

std::string VerifySummaryToJson(const VerifySummary& summary) {
  const ProofStats& s = summary.stats;
  std::ostringstream out;
  out << "{\"verified\": " << (summary.ok() ? "true" : "false")
      << ", \"stats\": {\"plans\": " << s.plans << ", \"hops\": " << s.hops
      << ", \"fused_steps\": " << s.fused_steps
      << ", \"obligations\": " << s.obligations
      << ", \"by_aux\": " << s.by_aux
      << ", \"by_witness\": " << s.by_witness
      << ", \"lock_sequences\": " << s.lock_sequences
      << ", \"lock_tables\": " << s.lock_tables
      << ", \"lock_escalations\": " << s.lock_escalations
      << ", \"lock_shards\": " << s.lock_shards
      << "}, \"report\": " << ReportToJson(summary.report, "") << "}";
  return out.str();
}

}  // namespace verify
}  // namespace inverda
