#ifndef INVERDA_VERIFY_VERIFIER_H_
#define INVERDA_VERIFY_VERIFIER_H_

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "catalog/catalog.h"
#include "plan/compiler.h"
#include "plan/plan.h"

namespace inverda {
namespace verify {

/// Static verification of compiled access plans (docs/verifier.md): the
/// plan-IR counterpart of the src/analysis lint pass. Where the analyzer
/// checks BiDEL scripts before they enter the catalog, the verifier checks
/// what the compiler *made of* the catalog — the TvPlan chains the executor
/// actually runs — and discharges three families of obligations:
///
///  1. Round-trip (GetPut/PutGet, the paper's Section 5 / Table 2): each
///     hop of a plan is symbolically executed over an abstract row/column
///     domain. Column provenance must be exact (every payload column of the
///     planned version recoverable from the data side), and every
///     information channel the data side cannot carry must be backed by a
///     physical auxiliary table — or proven unreachable by the analyzer's
///     partition-witness engine (a condition gap/violation that no row can
///     exercise needs no aux).
///  2. Fusion translation validation: a fused step's composed ColumnProgram
///     is recomputed independently from the SMO descriptions of its
///     original hops and compared column-wise; any divergence is a
///     miscompile, reported instead of silently executed.
///  3. Lock order: the latch acquisition sequences of all plans in the
///     genealogy must embed into one global total order (acyclic precedence
///     graph), the deadlock-freedom-by-construction argument of
///     TableLatchSet. Footprints above the escalation limit take the
///     exclusive global latch and are exempt.
///
/// Rule catalogue (docs/diagnostics.md):
///   errors:   plan-roundtrip-loss, plan-chain-broken,
///             plan-footprint-incomplete, fusion-mismatch,
///             lock-order-violation
///   warnings: plan-roundtrip-undecidable

/// Which obligation families VerifyPlan / VerifyGenealogy discharge.
struct VerifyOptions {
  bool roundtrip = true;
  bool fusion = true;
  bool lock_order = true;

  /// Shard count the lock-order analysis models: with more than one shard,
  /// every whole-table acquisition expands to the (table, shard) latch
  /// chain TableLatchSet actually takes, and the escalation rule includes
  /// the total latch budget. <= 1 models the unsharded engine.
  /// Inverda::VerifyPlans injects the database's active count when left at
  /// the default.
  int shards = 0;
};

/// Proof accounting: what was checked and how obligations were discharged.
struct ProofStats {
  int plans = 0;
  int hops = 0;         ///< SMO hops symbolically executed (fused expanded)
  int fused_steps = 0;  ///< fused steps validated against their runs
  int obligations = 0;  ///< information-channel obligations encountered
  int by_aux = 0;       ///< ... discharged by a physical auxiliary table
  int by_witness = 0;   ///< ... discharged by a witness unsatisfiability proof
  int lock_sequences = 0;    ///< latch sequences fed to the order analysis
  int lock_tables = 0;       ///< distinct latch names across all sequences
  int lock_escalations = 0;  ///< sequences exempt via global-latch escalation
  int lock_shards = 1;       ///< shard count the lock analysis modeled
};

/// The outcome of verifying a genealogy: every diagnostic plus the proof
/// accounting. `ok()` is the verdict the CI gate keys on.
struct VerifySummary {
  AnalysisReport report;
  ProofStats stats;

  bool ok() const { return !report.has_errors(); }
};

/// Verifies one compiled plan: round-trip obligations per hop (fused runs
/// are expanded to their original hops) and translation validation of every
/// fused step. `stats` (optional) accumulates proof accounting.
AnalysisReport VerifyPlan(const VersionCatalog& catalog,
                          const plan::TvPlan& compiled,
                          const VerifyOptions& options = {},
                          ProofStats* stats = nullptr);

/// Translation validation of one fused step: recomputes the composed column
/// program independently from the SMO descriptions of the original hops and
/// compares it column-wise against `step.program`. Empty report == the
/// fusion is proven equivalent to the unfused kernel composition. Used by
/// the compiler's opt-in post-compile gate (PlanCompiler::set_verify_enabled)
/// to reject miscompiled fusions with an unfused fallback.
AnalysisReport ValidateFusedStep(const plan::PlanStep& step,
                                 const std::string& plan_label = "");

/// One latch acquisition sequence (a plan's footprint in acquisition
/// order). Exposed so tests can feed hand-built sequences; genealogy
/// verification feeds the canonical sorted-unique order TableLatchSet uses.
struct LockSequence {
  std::string label;
  std::vector<std::string> tables;
};

/// Static lock-order analysis: builds the precedence graph of consecutive
/// acquisitions across all sequences and reports any cycle (no single
/// global order exists). Sequences longer than `escalation_limit` escalate
/// to the exclusive global latch and are exempt from the graph.
AnalysisReport CheckLockOrder(const std::vector<LockSequence>& sequences,
                              size_t escalation_limit,
                              ProofStats* stats = nullptr);

/// Shard-aware variant: with `shards` > 1 every table in a sequence
/// expands to the hierarchical latch chain a whole-table reader takes
/// (`table, table#0, ..., table#S-1` — the maximal fine acquisition), and
/// a sequence additionally escalates when its total latch count would
/// exceed TableLatchSet::kShardLatchBudget, mirroring the runtime rule.
/// `shards` <= 1 behaves exactly like the three-argument form.
AnalysisReport CheckLockOrder(const std::vector<LockSequence>& sequences,
                              size_t escalation_limit, int shards,
                              ProofStats* stats);

/// Latch-graph name of the migration coordinator's delta-log leaf lock
/// (StagedEntry::mu). During an online migration every top-level write may
/// take it after its table latches; '~' sorts after every physical table
/// name, so appending it keeps a sorted sequence sorted.
inline constexpr char kMigrationCaptureLatch[] = "~migration.capture";

/// Lock-order analysis of the online-migration acquisition pattern
/// (docs/migration.md): every write sequence may additionally take the
/// coordinator's capture leaf lock after its table latches, so each
/// sequence is extended by kMigrationCaptureLatch and the extended set
/// must still embed into one global order. The escalation limit is raised
/// by one so exactly the sequences that escalate at runtime stay exempt.
AnalysisReport CheckMigrationLockOrder(std::vector<LockSequence> sequences,
                                       size_t escalation_limit, int shards,
                                       ProofStats* stats = nullptr);

/// Verifies every table version of the genealogy under the current
/// materialization: compiles a fresh full plan per version through
/// `compiler` and runs all enabled checks, including the cross-plan lock
/// order analysis. Fails only on compile errors; verification findings are
/// returned as diagnostics in the summary.
Result<VerifySummary> VerifyGenealogy(const VersionCatalog& catalog,
                                      const plan::PlanCompiler& compiler,
                                      const VerifyOptions& options = {});

/// Human-readable rendering: the proof accounting plus every diagnostic.
std::string FormatVerifySummary(const VerifySummary& summary);

/// Machine-readable rendering: {"verified": bool, "stats": {...},
/// "diagnostics": [...]} — the VERIFY JSON / --verify-plans --json output.
std::string VerifySummaryToJson(const VerifySummary& summary);

}  // namespace verify
}  // namespace inverda

#endif  // INVERDA_VERIFY_VERIFIER_H_
