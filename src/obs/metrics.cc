#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace inverda {
namespace obs {

const std::array<int64_t, Histogram::kNumBuckets - 1>&
Histogram::BucketBounds() {
  // Geometric ladder, factor 4: 250ns, 1us, 4us, 16us, 64us, 256us, ~1ms,
  // ~4ms, ~16ms, ~64ms, ~256ms, ~1s. Everything slower overflows.
  static const std::array<int64_t, kNumBuckets - 1> kBounds = {
      250,        1'000,      4'000,       16'000,        64'000,
      256'000,    1'024'000,  4'096'000,   16'384'000,    65'536'000,
      262'144'000, 1'048'576'000};
  return kBounds;
}

void Histogram::Record(int64_t ns) {
  const auto& bounds = BucketBounds();
  int bucket = kNumBuckets - 1;  // overflow unless a bound catches it
  for (int i = 0; i < kNumBuckets - 1; ++i) {
    if (ns <= bounds[static_cast<size_t>(i)]) {
      bucket = i;
      break;
    }
  }
  buckets_[static_cast<size_t>(bucket)].fetch_add(1,
                                                  std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(ns, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum_ns = sum_.load(std::memory_order_relaxed);
  for (int i = 0; i < kNumBuckets; ++i) {
    out.buckets[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

int64_t MetricsSnapshot::value(const std::string& name) const {
  for (const MetricValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

bool MetricsSnapshot::has(const std::string& name) const {
  for (const MetricValue& c : counters) {
    if (c.name == name) return true;
  }
  return false;
}

const Histogram::Snapshot* MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const HistogramValue& h : histograms) {
    if (h.name == name) return &h.hist;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  out += "counters:\n";
  for (const MetricValue& c : counters) {
    char line[160];
    std::snprintf(line, sizeof(line), "  %-40s %12lld\n", c.name.c_str(),
                  static_cast<long long>(c.value));
    out += line;
  }
  out += "histograms (ns):\n";
  const auto& bounds = Histogram::BucketBounds();
  for (const HistogramValue& h : histograms) {
    char line[200];
    std::snprintf(line, sizeof(line),
                  "  %-40s count=%lld sum=%lld mean=%.0f\n", h.name.c_str(),
                  static_cast<long long>(h.hist.count),
                  static_cast<long long>(h.hist.sum_ns), h.hist.mean_ns());
    out += line;
    out += "    buckets:";
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      int64_t n = h.hist.buckets[static_cast<size_t>(i)];
      if (n == 0) continue;
      if (i < Histogram::kNumBuckets - 1) {
        std::snprintf(line, sizeof(line), " [<=%lld]=%lld",
                      static_cast<long long>(bounds[static_cast<size_t>(i)]),
                      static_cast<long long>(n));
      } else {
        std::snprintf(line, sizeof(line), " [inf]=%lld",
                      static_cast<long long>(n));
      }
      out += line;
    }
    out += "\n";
  }
  return out;
}

namespace {

// Minimal JSON string escaping (metric names are plain identifiers, but a
// source may report arbitrary labels).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const MetricValue& c : counters) {
    if (!first) out += ",";
    first = false;
    out += '"';
    out += JsonEscape(c.name);
    out += "\":";
    out += std::to_string(c.value);
  }
  out += "},\"histograms\":{";
  const auto& bounds = Histogram::BucketBounds();
  first = true;
  for (const HistogramValue& h : histograms) {
    if (!first) out += ",";
    first = false;
    out += '"';
    out += JsonEscape(h.name);
    out += "\":{\"count\":";
    out += std::to_string(h.hist.count);
    out += ",\"sum_ns\":";
    out += std::to_string(h.hist.sum_ns);
    out += ",\"buckets\":[";
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      if (i) out += ",";
      out += "{\"le\":";
      if (i < Histogram::kNumBuckets - 1) {
        out += std::to_string(bounds[static_cast<size_t>(i)]);
      } else {
        out += "null";
      }
      out += ",\"count\":" +
             std::to_string(h.hist.buckets[static_cast<size_t>(i)]) + "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>()).first;
  }
  return it->second.get();
}

void MetricsRegistry::RegisterSource(const std::string& name,
                                     SourceFn snapshot_fn, ResetFn reset_fn) {
  std::lock_guard<std::mutex> lock(mu_);
  sources_[name] = Source{std::move(snapshot_fn), std::move(reset_fn)};
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    out.counters.push_back({name, counter->value()});
  }
  for (const auto& [name, source] : sources_) {
    std::vector<MetricValue> values = source.snapshot();
    out.counters.insert(out.counters.end(), values.begin(), values.end());
  }
  std::sort(out.counters.begin(), out.counters.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  for (const auto& [name, hist] : histograms_) {
    out.histograms.push_back({name, hist->snapshot()});
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    (void)name;
    counter->Reset();
  }
  for (const auto& [name, hist] : histograms_) {
    (void)name;
    hist->Reset();
  }
  for (const auto& [name, source] : sources_) {
    (void)name;
    if (source.reset) source.reset();
  }
}

}  // namespace obs
}  // namespace inverda
