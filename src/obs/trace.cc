#include "obs/trace.h"

#include <algorithm>
#include <utility>

namespace inverda {
namespace obs {

thread_local Tracer::ThreadState Tracer::tls_;

int TraceSpan::TotalSpans() const {
  int total = 1;
  for (const TraceSpan& c : children) total += c.TotalSpans();
  return total;
}

void TraceSpan::Collect(const std::string& span_name,
                        std::vector<const TraceSpan*>* out) const {
  if (name == span_name) out->push_back(this);
  for (const TraceSpan& c : children) c.Collect(span_name, out);
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string TraceSpan::ToJson() const {
  std::string out = "{\"name\":\"" + JsonEscape(name) + "\"";
  if (!label.empty()) out += ",\"label\":\"" + JsonEscape(label) + "\"";
  if (smo >= 0) out += ",\"smo\":" + std::to_string(smo);
  if (!route.empty()) out += ",\"route\":\"" + JsonEscape(route) + "\"";
  if (!side.empty()) {
    out += ",\"side\":\"" + JsonEscape(side) +
           "\",\"index\":" + std::to_string(index);
  }
  if (!kernel.empty()) out += ",\"kernel\":\"" + JsonEscape(kernel) + "\"";
  if (!smo_text.empty()) {
    out += ",\"smo_text\":\"" + JsonEscape(smo_text) + "\"";
  }
  if (fused > 0) {
    out += ",\"fused\":" + std::to_string(fused) + ",\"fused_hops\":[";
    for (size_t i = 0; i < fused_hops.size(); ++i) {
      if (i) out += ",";
      out += "{\"kernel\":\"" + JsonEscape(fused_hops[i].first) +
             "\",\"smo_text\":\"" + JsonEscape(fused_hops[i].second) + "\"}";
    }
    out += "]";
  }
  if (!note.empty()) out += ",\"note\":\"" + JsonEscape(note) + "\"";
  out += ",\"rows_in\":" + std::to_string(rows_in) +
         ",\"rows_out\":" + std::to_string(rows_out) +
         ",\"duration_ns\":" + std::to_string(duration_ns);
  if (!children.empty()) {
    out += ",\"children\":[";
    for (size_t i = 0; i < children.size(); ++i) {
      if (i) out += ",";
      out += children[i].ToJson();
    }
    out += "]";
  }
  out += "}";
  return out;
}

TraceSpan* Tracer::Begin(const char* name) {
  ThreadState& ts = tls_;
  if (ts.owner != nullptr && ts.owner != this) return nullptr;
  if (ts.owner == nullptr) {
    ts.owner = this;
    ts.root = std::make_unique<TraceSpan>();
    ts.root->name = name;
    ts.root->start_ns = NowNanos();
    ts.stack.push_back(ts.root.get());
    return ts.root.get();
  }
  TraceSpan* parent = ts.stack.back();
  parent->children.emplace_back();
  TraceSpan* span = &parent->children.back();
  span->name = name;
  span->start_ns = NowNanos();
  ts.stack.push_back(span);
  return span;
}

void Tracer::End(TraceSpan* span) {
  ThreadState& ts = tls_;
  span->duration_ns = NowNanos() - span->start_ns;
  // RAII guards close innermost-first, so `span` is the stack top.
  ts.stack.pop_back();
  if (!ts.stack.empty()) return;
  std::shared_ptr<const TraceSpan> done(ts.root.release());
  ts.owner = nullptr;
  completed_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(done));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<std::shared_ptr<const TraceSpan>> Tracer::Last(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<const TraceSpan>> out;
  size_t take = std::min(n, ring_.size());
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.push_back(ring_[ring_.size() - 1 - i]);  // newest first
  }
  return out;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

void Tracer::set_capacity(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = n == 0 ? 1 : n;
  while (ring_.size() > capacity_) ring_.pop_front();
}

}  // namespace obs
}  // namespace inverda
