#ifndef INVERDA_OBS_OBSERVABILITY_H_
#define INVERDA_OBS_OBSERVABILITY_H_

#include "obs/metrics.h"
#include "obs/trace.h"

namespace inverda {
namespace obs {

/// The per-Inverda observability bundle: one metrics registry (the unified
/// stats surface behind Inverda::Metrics()/ResetMetrics()) and one tracer
/// (per-operation span trees, TRACE ON|OFF|LAST in the shell). Constructed
/// by the facade before the access layer so every component can cache its
/// counter/histogram pointers at wiring time. See docs/observability.md.
///
/// `hot()` packs both runtime gates — tracing and detailed timing — into
/// one word, so the access layer decides "is any per-operation recording
/// on" with a single relaxed load instead of one load per gate per site
/// (the setters mirror their own atomic into the shared word).
struct Observability {
  static constexpr uint32_t kTracingBit = 1u << 0;
  static constexpr uint32_t kTimingBit = 1u << 1;

  MetricsRegistry metrics;
  Tracer tracer;

  Observability() {
    metrics.BindHotFlag(&hot_flags_, kTimingBit);
    tracer.BindHotFlag(&hot_flags_, kTracingBit);
    metrics.RegisterSource(
        "tracer",
        [this] {
          return std::vector<MetricValue>{
              {"trace.completed", tracer.completed()},
              {"trace.enabled", tracer.enabled() ? 1 : 0}};
        },
        /*reset_fn=*/nullptr);
  }

  /// The packed gate word: 0 means no per-operation recording of any kind.
  uint32_t hot() const {
    if constexpr (!kObsBuild) return 0;
    return hot_flags_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint32_t> hot_flags_{0};
};

}  // namespace obs
}  // namespace inverda

#endif  // INVERDA_OBS_OBSERVABILITY_H_
