#ifndef INVERDA_OBS_METRICS_H_
#define INVERDA_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace inverda {
namespace obs {

/// Compile-time switch of the observability instrumentation. A build
/// configured with -DINVERDA_OBS=OFF defines INVERDA_NO_OBS, which turns
/// every SpanGuard / ScopedTimer / instrumentation block in the hot paths
/// into dead code — the no-obs baseline the overhead guard
/// (scripts/obs_overhead.sh) compares against. The registry itself stays
/// functional in both builds; only the per-operation recording vanishes.
#ifdef INVERDA_NO_OBS
inline constexpr bool kObsBuild = false;
#else
inline constexpr bool kObsBuild = true;
#endif

/// Mirrors an on/off gate into a shared packed-flags word (see
/// Observability::hot()). No-op until the owner is bound to one.
inline void MirrorHotFlag(std::atomic<uint32_t>* flags, uint32_t bit,
                          bool on) {
  if (flags == nullptr) return;
  if (on) {
    flags->fetch_or(bit, std::memory_order_relaxed);
  } else {
    flags->fetch_and(~bit, std::memory_order_relaxed);
  }
}

/// Monotonic nanoseconds for latency measurements.
inline int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A named monotonic counter. Lock-free: Add is one relaxed fetch_add, so
/// counters sit directly on the hot access path. Obtained once from the
/// registry (the pointer is stable for the registry's lifetime) and then
/// bumped without any lookup.
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A fixed-bucket latency histogram (nanoseconds). The bucket edges are a
/// static geometric ladder (factor 4 from 250 ns to 4 s, plus an overflow
/// bucket), so two histograms are always comparable and a snapshot is a
/// plain array copy. Record is lock-free: one bucket fetch_add plus the
/// count/sum accumulators, all relaxed.
class Histogram {
 public:
  /// Number of buckets including the overflow bucket.
  static constexpr int kNumBuckets = 13;

  /// Inclusive upper bounds of buckets 0..kNumBuckets-2 in nanoseconds; a
  /// value v lands in the first bucket with v <= bound. Values above the
  /// last bound land in the overflow bucket.
  static const std::array<int64_t, kNumBuckets - 1>& BucketBounds();

  void Record(int64_t ns);

  /// A coherent-enough copy of the counters (individually relaxed loads;
  /// concurrent Records may straddle the copy, counts never go backwards).
  struct Snapshot {
    int64_t count = 0;
    int64_t sum_ns = 0;
    std::array<int64_t, kNumBuckets> buckets{};

    double mean_ns() const {
      return count > 0 ? static_cast<double>(sum_ns) / count : 0.0;
    }
  };
  Snapshot snapshot() const;

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum_ns() const { return sum_.load(std::memory_order_relaxed); }

  void Reset();

 private:
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// One named value in a metrics snapshot.
struct MetricValue {
  std::string name;
  int64_t value = 0;
};

/// One named histogram in a metrics snapshot.
struct HistogramValue {
  std::string name;
  Histogram::Snapshot hist;
};

/// A point-in-time copy of every metric the registry knows: push counters
/// and histograms plus the values pulled from registered sources, each
/// sorted by name. Renderable to aligned text (the shell's METRICS
/// command) and JSON (bench artifacts, METRICS JSON); the JSON schema is
/// documented in docs/observability.md.
struct MetricsSnapshot {
  std::vector<MetricValue> counters;
  std::vector<HistogramValue> histograms;

  /// The counter named `name`, or 0 when absent.
  int64_t value(const std::string& name) const;
  bool has(const std::string& name) const;

  /// The histogram named `name`, or nullptr when absent.
  const Histogram::Snapshot* histogram(const std::string& name) const;

  std::string ToText() const;
  std::string ToJson() const;
};

/// The process-wide-per-Inverda registry of named counters, histograms and
/// pull-sources — the single stats surface behind Inverda::Metrics().
///
/// Two kinds of metrics co-exist:
///  - push metrics: counter()/histogram() hand out stable pointers that
///    components cache once and bump lock-free on the hot path;
///  - pull sources: components that already keep their own (relaxed-atomic)
///    counters — the plan cache, the view cache, the plan compiler —
///    register a snapshot callback and an optional reset callback, so their
///    numbers appear in the same snapshot without double bookkeeping (and
///    therefore cannot drift from the component's own view).
///
/// The registry mutex guards only the name maps and the source list; it is
/// taken on registration and snapshot, never on the hot recording path.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The counter / histogram named `name`, created on first use. The
  /// returned pointer stays valid for the registry's lifetime.
  Counter* counter(const std::string& name);
  Histogram* histogram(const std::string& name);

  using SourceFn = std::function<std::vector<MetricValue>()>;
  using ResetFn = std::function<void()>;

  /// Registers a pull-source: `snapshot_fn` contributes named values to
  /// every Snapshot(); `reset_fn` (may be null for monotonic sources) is
  /// invoked by Reset(). Re-registering a name replaces the source.
  void RegisterSource(const std::string& name, SourceFn snapshot_fn,
                      ResetFn reset_fn = nullptr);

  /// Detailed-timing gate. Latency histograms and per-kernel timers cost
  /// two clock reads per measurement — 20-50% on a sub-microsecond point
  /// get — so the access layer records them only while this is enabled
  /// (one relaxed load on the hot path). Counters and pull-sources are
  /// always on. The shell's TRACE ON, the benches' span aggregation and
  /// the tests enable it; scripts/obs_overhead.sh guards the disabled
  /// cost against a no-obs build.
  bool timing_enabled() const {
    if constexpr (!kObsBuild) return false;
    return timing_.load(std::memory_order_relaxed);
  }
  void set_timing_enabled(bool on) {
    timing_.store(on, std::memory_order_relaxed);
    MirrorHotFlag(hot_flags_, hot_bit_, on);
  }

  /// Wired by Observability: set_timing_enabled additionally mirrors the
  /// gate into the shared hot-flags word the access layer polls.
  void BindHotFlag(std::atomic<uint32_t>* flags, uint32_t bit) {
    hot_flags_ = flags;
    hot_bit_ = bit;
  }

  /// A sorted copy of every counter, histogram and source value.
  MetricsSnapshot Snapshot() const;

  /// The single reset point: zeroes every push counter and histogram and
  /// invokes every source's reset callback (sources without one — e.g. the
  /// plan compiler's monotonic walk counters — keep their values).
  void Reset();

  /// Convenience: Snapshot().value(name).
  int64_t value(const std::string& name) const { return Snapshot().value(name); }

 private:
  struct Source {
    SourceFn snapshot;
    ResetFn reset;
  };

  std::atomic<bool> timing_{false};
  std::atomic<uint32_t>* hot_flags_ = nullptr;
  uint32_t hot_bit_ = 0;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, Source> sources_;
};

/// RAII latency measurement into a histogram. Compiles to nothing in a
/// no-obs build; a null histogram makes it a no-op (used to skip nested
/// recursion levels).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist) {
    if constexpr (kObsBuild) {
      if (hist != nullptr) [[unlikely]] {
        hist_ = hist;
        start_ = NowNanos();
      }
    }
  }
  ~ScopedTimer() {
    if constexpr (kObsBuild) {
      if (hist_ != nullptr) [[unlikely]] hist_->Record(NowNanos() - start_);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_ = nullptr;
  int64_t start_ = 0;
};

}  // namespace obs
}  // namespace inverda

#endif  // INVERDA_OBS_METRICS_H_
