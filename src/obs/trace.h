#ifndef INVERDA_OBS_TRACE_H_
#define INVERDA_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace inverda {
namespace obs {

/// One node of a per-operation trace tree. The access layer opens a span
/// per top-level operation ("scan" / "find" / "apply") and a span per
/// executed plan step ("derive" / "propagate"); kernel recursion through
/// the backend nests naturally, so a read at propagation distance d yields
/// one derive span per PlanStep with the next hop's scan underneath it.
///
/// Step spans carry the same fields EXPLAIN prints for the matching
/// PlanStep (SMO id + BiDEL text, Figure-6 route case, side/index, kernel,
/// aux bindings), so plan::RenderTrace can reuse the EXPLAIN step
/// formatter verbatim and a trace is directly comparable to the compiled
/// plan it executed.
struct TraceSpan {
  std::string name;   // "scan" | "find" | "apply" | "derive" | "propagate"
  std::string label;  // catalog TvLabel of the operated version

  // Step metadata (derive/propagate spans; smo == -1 otherwise).
  int64_t smo = -1;
  std::string route;     // "physical" | "forward" | "backward" | ""
  std::string side;      // "source" | "target" | ""
  int index = 0;
  std::string kernel;
  std::string smo_text;  // BiDEL text, as EXPLAIN prints it
  std::vector<std::pair<std::string, std::string>> aux;  // short -> physical

  // Fusion (plan/fused.h): number of SMO hops a fused step stands for
  // (0 on ordinary steps) and the per-hop kernel name + BiDEL text, in
  // plan order, so RenderTrace prints the same fused[k] block as EXPLAIN.
  int fused = 0;
  std::vector<std::pair<std::string, std::string>> fused_hops;

  std::string note;  // free-form marker, e.g. "view-cache hit"

  int64_t rows_in = 0;   // writes carried into this span
  int64_t rows_out = 0;  // rows produced by this span
  int64_t start_ns = 0;  // monotonic clock, see obs::NowNanos
  int64_t duration_ns = 0;

  std::vector<TraceSpan> children;

  /// Number of spans in this subtree, including this one.
  int TotalSpans() const;

  /// Depth-first collection of every span named `name` in this subtree
  /// (used by tests to compare the derive chain against the plan's steps).
  void Collect(const std::string& name,
               std::vector<const TraceSpan*>* out) const;

  std::string ToJson() const;
};

/// Records per-operation trace trees into a bounded ring buffer of the
/// most recently completed traces.
///
/// Cost model: when disabled, every instrumentation site is one relaxed
/// atomic load and a branch (SpanGuard's constructor); nothing allocates.
/// When enabled, the span tree is built entirely in thread-local state —
/// the only shared structure is the ring buffer, locked once per completed
/// top-level trace.
///
/// Toggling is safe at any time (see trace_race_test): a trace in flight
/// when tracing is disabled still completes (its remaining child spans are
/// simply not recorded), and enabling mid-operation starts recording at
/// the next span boundary, which may publish a partial trace.
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 32;

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const {
    if constexpr (!kObsBuild) return false;
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
    MirrorHotFlag(hot_flags_, hot_bit_, on);
  }

  /// Wired by Observability: set_enabled additionally mirrors the gate
  /// into the shared hot-flags word the access layer polls.
  void BindHotFlag(std::atomic<uint32_t>* flags, uint32_t bit) {
    hot_flags_ = flags;
    hot_bit_ = bit;
  }

  /// The most recently completed traces, newest first, at most `n` (and at
  /// most the ring capacity). Traces are shared snapshots: the returned
  /// trees stay valid after the ring evicts them.
  std::vector<std::shared_ptr<const TraceSpan>> Last(size_t n) const;

  /// Drops every buffered trace.
  void Clear();

  /// Total completed top-level traces since construction (not affected by
  /// Clear; exported as the "trace.completed" metric).
  int64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return capacity_; }
  void set_capacity(size_t n);

 private:
  friend class SpanGuard;

  /// Opens a span: the root of a new trace when the calling thread has no
  /// open trace on this tracer, a child of the innermost open span
  /// otherwise. Returns nullptr when recording is off or the thread is
  /// inside another tracer's trace.
  TraceSpan* Begin(const char* name);

  /// Closes `span` (must be the innermost open span); publishing the root
  /// into the ring when the trace completed.
  void End(TraceSpan* span);

  // The per-thread trace under construction. Pointers on the stack point
  // into the children vectors of their parents; only the innermost open
  // span's children vector ever grows, so the ancestors stay pinned.
  struct ThreadState {
    Tracer* owner = nullptr;
    std::unique_ptr<TraceSpan> root;
    std::vector<TraceSpan*> stack;
  };
  static thread_local ThreadState tls_;

  std::atomic<bool> enabled_{false};
  std::atomic<uint32_t>* hot_flags_ = nullptr;
  uint32_t hot_bit_ = 0;
  std::atomic<int64_t> completed_{0};
  mutable std::mutex mu_;  // guards ring_ and capacity_
  size_t capacity_ = kDefaultCapacity;
  std::deque<std::shared_ptr<const TraceSpan>> ring_;
};

/// RAII span: opens on construction (a single relaxed load + branch when
/// tracing is off), closes on destruction. Dereference only after checking
/// the guard: `if (span) span->label = ...`.
class SpanGuard {
 public:
  SpanGuard(Tracer* tracer, const char* name) {
    if constexpr (kObsBuild) {
      if (tracer != nullptr && tracer->enabled()) [[unlikely]] {
        span_ = tracer->Begin(name);
        if (span_ != nullptr) tracer_ = tracer;
      }
    }
  }
  ~SpanGuard() {
    if constexpr (kObsBuild) {
      if (span_ != nullptr) [[unlikely]] tracer_->End(span_);
    }
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  explicit operator bool() const { return span_ != nullptr; }
  TraceSpan* operator->() { return span_; }
  TraceSpan* get() { return span_; }

 private:
  Tracer* tracer_ = nullptr;
  TraceSpan* span_ = nullptr;
};

}  // namespace obs
}  // namespace inverda

#endif  // INVERDA_OBS_TRACE_H_
