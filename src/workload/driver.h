#ifndef INVERDA_WORKLOAD_DRIVER_H_
#define INVERDA_WORKLOAD_DRIVER_H_

#include <string>
#include <vector>

#include "inverda/inverda.h"
#include "util/random.h"
#include "util/status.h"

namespace inverda {

/// Operation mix of a workload, as fractions summing to 1. The paper's
/// standard mix is 50% reads, 20% inserts, 20% updates, 10% deletes.
struct OpMix {
  double reads = 0.5;
  double inserts = 0.2;
  double updates = 0.2;
  double deletes = 0.1;

  static OpMix ReadOnly() { return {1.0, 0.0, 0.0, 0.0}; }
  static OpMix InsertOnly() { return {0.0, 1.0, 0.0, 0.0}; }
  static OpMix Standard() { return {0.5, 0.2, 0.2, 0.1}; }
};

/// One workload target: a (version, table) pair plus a row generator for
/// inserts/updates matching that version's schema.
struct WorkloadTarget {
  std::string version;
  std::string table;
  std::function<Row(Random*)> make_row;
};

/// Runs `num_ops` operations of the given mix against `target` and returns
/// the elapsed wall-clock seconds. Point updates/deletes pick random keys
/// from `keys` (newly inserted keys are appended; deleted keys removed).
Result<double> RunWorkload(Inverda* db, const WorkloadTarget& target,
                           const OpMix& mix, int num_ops, Random* rng,
                           std::vector<int64_t>* keys);

/// The Technology Adoption Life Cycle curve used by Figures 9 and 10: the
/// fraction of the workload on the *new* version at time slice `t` of
/// `total` (logistic S-curve from ~0 to ~1).
double AdoptionFraction(int t, int total);

/// Current wall-clock seconds (monotonic), for benchmark harnesses.
double NowSeconds();

}  // namespace inverda

#endif  // INVERDA_WORKLOAD_DRIVER_H_
