#ifndef INVERDA_WORKLOAD_DRIVER_H_
#define INVERDA_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "inverda/inverda.h"
#include "util/random.h"
#include "util/status.h"

namespace inverda {

/// Operation mix of a workload, as fractions summing to 1. The paper's
/// standard mix is 50% reads, 20% inserts, 20% updates, 10% deletes.
struct OpMix {
  double reads = 0.5;
  double inserts = 0.2;
  double updates = 0.2;
  double deletes = 0.1;

  static OpMix ReadOnly() { return {1.0, 0.0, 0.0, 0.0}; }
  static OpMix InsertOnly() { return {0.0, 1.0, 0.0, 0.0}; }
  static OpMix Standard() { return {0.5, 0.2, 0.2, 0.1}; }
};

/// One workload target: a (version, table) pair plus a row generator for
/// inserts/updates matching that version's schema.
struct WorkloadTarget {
  std::string version;
  std::string table;
  std::function<Row(Random*)> make_row;
};

/// Runs `num_ops` operations of the given mix against `target` and returns
/// the elapsed wall-clock seconds. Point updates/deletes pick random keys
/// from `keys` (newly inserted keys are appended; deleted keys removed).
Result<double> RunWorkload(Inverda* db, const WorkloadTarget& target,
                           const OpMix& mix, int num_ops, Random* rng,
                           std::vector<int64_t>* keys);

/// One client of a concurrent workload: a thread pinned to one
/// (version, table) target — the paper's co-existing-version scenario,
/// where different applications stay on different schema versions of the
/// same data set. Each client owns a private key list (give clients
/// disjoint `initial_keys`, or none, so point writes never race on the
/// same key) and a private RNG derived from the run seed and its index.
struct ConcurrentClientSpec {
  WorkloadTarget target;
  OpMix mix = OpMix::Standard();
  std::vector<int64_t> initial_keys;
};

/// Options of a concurrent run.
struct ConcurrentOptions {
  int ops_per_client = 1000;
  uint64_t seed = 1;
  /// Optional DBA loop run on its own thread while the clients work
  /// (e.g. flipping the materialization back and forth): invoked
  /// repeatedly until every client finished; a failed status stops the
  /// loop and is reported in ConcurrentResult::dba_status.
  std::function<Status()> dba_action;
  /// When true, writes rejected with kConstraintViolation or
  /// kInvalidArgument count as ConcurrentClientResult::rejections instead
  /// of stopping the client — random rows can legally collide with
  /// invisible tuples or violate partition conditions. Reads always stop
  /// the client on error.
  bool tolerate_rejections = false;
  /// Optional one-shot migration fired mid-workload on its own thread
  /// (e.g. MaterializeOnline + WaitForMigration). It starts once the
  /// clients completed `migrate_after_ops` operations in total, runs to
  /// completion exactly once, and its status lands in
  /// ConcurrentResult::migrate_status. Operations that complete while it
  /// is in flight count into ConcurrentClientResult::ops_during_migration
  /// — the "versions stay live while the floor moves" evidence.
  std::function<Status()> migrate_during;
  int migrate_after_ops = 0;
};

/// Per-client outcome: how many operations of each kind completed, and the
/// first error (a client stops at its first failed operation).
struct ConcurrentClientResult {
  int64_t reads = 0;
  int64_t inserts = 0;
  int64_t updates = 0;
  int64_t deletes = 0;
  int64_t rejections = 0;  // legally rejected writes (see ConcurrentOptions)
  /// Operations completed while the migrate_during migration was in
  /// flight (0 when no migration ran or it missed this client's window).
  int64_t ops_during_migration = 0;
  Status status = Status::OK();
  std::vector<int64_t> final_keys;  // surviving keys at client exit
  int64_t ops() const { return reads + inserts + updates + deletes; }
};

/// Outcome of a concurrent run.
struct ConcurrentResult {
  double seconds = 0;
  std::vector<ConcurrentClientResult> clients;
  int64_t dba_iterations = 0;
  Status dba_status = Status::OK();
  bool migrate_fired = false;  // the migrate_during migration ran
  Status migrate_status = Status::OK();

  int64_t total_ops() const {
    int64_t total = 0;
    for (const ConcurrentClientResult& c : clients) total += c.ops();
    return total;
  }
  double throughput() const {
    return seconds > 0 ? static_cast<double>(total_ops()) / seconds : 0;
  }
  /// First client or DBA error, or OK.
  Status first_error() const;
};

/// Runs every client on its own thread against the shared `db` (plus the
/// optional DBA thread) and joins them all: the multi-threaded counterpart
/// of RunWorkload. Thread-safety of the run rests on the Inverda facade's
/// DDL/DML lock and the access layer's per-table latches
/// (docs/concurrency.md).
ConcurrentResult RunConcurrentWorkload(
    Inverda* db, const std::vector<ConcurrentClientSpec>& clients,
    const ConcurrentOptions& options);

/// The Technology Adoption Life Cycle curve used by Figures 9 and 10: the
/// fraction of the workload on the *new* version at time slice `t` of
/// `total` (logistic S-curve from ~0 to ~1).
double AdoptionFraction(int t, int total);

/// Current wall-clock seconds (monotonic), for benchmark harnesses.
double NowSeconds();

}  // namespace inverda

#endif  // INVERDA_WORKLOAD_DRIVER_H_
