#ifndef INVERDA_WORKLOAD_TASKY_H_
#define INVERDA_WORKLOAD_TASKY_H_

#include <memory>
#include <string>
#include <vector>

#include "inverda/inverda.h"
#include "util/random.h"
#include "util/status.h"

namespace inverda {

/// The TasKy running example of the paper (Figure 1): the initial TasKy
/// schema, the Do! phone-app version (horizontal split + dropped priority)
/// and the normalized TasKy2 version (decompose on a foreign key + rename).
struct TaskyScenario {
  std::unique_ptr<Inverda> db;

  /// Keys of all loaded tasks (for random point operations).
  std::vector<int64_t> task_keys;

  static constexpr const char* kTasKy = "TasKy";
  static constexpr const char* kDo = "Do!";
  static constexpr const char* kTasKy2 = "TasKy2";
};

/// Options for building the scenario.
struct TaskyOptions {
  int num_tasks = 1000;
  int num_authors = 50;
  uint64_t seed = 42;
  bool create_do = true;
  bool create_tasky2 = true;
};

/// Builds the three co-existing schema versions and loads `num_tasks` tasks
/// through the TasKy version (the initial materialization).
Result<TaskyScenario> BuildTasky(const TaskyOptions& options);

/// A deterministic random task payload for the TasKy schema
/// Task(author, task, prio); priorities are 1-3 with 1 being most frequent.
Row RandomTaskRow(Random* rng, int num_authors);

}  // namespace inverda

#endif  // INVERDA_WORKLOAD_TASKY_H_
