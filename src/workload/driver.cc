#include "workload/driver.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

namespace inverda {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double AdoptionFraction(int t, int total) {
  // Logistic curve centered at the half-way point, spanning ~[-6, 6].
  double x = 12.0 * (static_cast<double>(t) / static_cast<double>(total)) -
             6.0;
  return 1.0 / (1.0 + std::exp(-x));
}

Result<double> RunWorkload(Inverda* db, const WorkloadTarget& target,
                           const OpMix& mix, int num_ops, Random* rng,
                           std::vector<int64_t>* keys) {
  double start = NowSeconds();
  for (int i = 0; i < num_ops; ++i) {
    double roll = rng->NextDouble();
    if (roll < mix.reads || keys->empty()) {
      INVERDA_ASSIGN_OR_RETURN(std::vector<KeyedRow> rows,
                               db->Select(target.version, target.table));
      // Touch the result so the scan is not optimized away.
      if (!rows.empty() && rows[0].row.empty()) {
        return Status::Internal("empty payload row");
      }
      continue;
    }
    roll -= mix.reads;
    if (roll < mix.inserts) {
      INVERDA_ASSIGN_OR_RETURN(
          int64_t key,
          db->Insert(target.version, target.table, target.make_row(rng)));
      keys->push_back(key);
      continue;
    }
    roll -= mix.inserts;
    size_t pick = static_cast<size_t>(rng->NextUint64(keys->size()));
    int64_t key = (*keys)[pick];
    if (roll < mix.updates) {
      // Update only if the row is visible through this version's table.
      INVERDA_ASSIGN_OR_RETURN(std::optional<Row> current,
                               db->Get(target.version, target.table, key));
      if (current) {
        INVERDA_RETURN_IF_ERROR(db->Update(target.version, target.table, key,
                                           target.make_row(rng)));
      }
      continue;
    }
    INVERDA_RETURN_IF_ERROR(db->Delete(target.version, target.table, key));
    (*keys)[pick] = keys->back();
    keys->pop_back();
  }
  return NowSeconds() - start;
}

Status ConcurrentResult::first_error() const {
  for (const ConcurrentClientResult& c : clients) {
    if (!c.status.ok()) return c.status;
  }
  if (!dba_status.ok()) return dba_status;
  return migrate_status;
}

namespace {

// Shared progress state of the migrate_during phase: clients bump `ops`
// per completed operation; the migration thread waits on it, then opens
// the window (1) for the duration of the migration and closes it (2).
struct MigrationWindow {
  std::atomic<int64_t> ops{0};
  std::atomic<int> state{0};  // 0 = waiting, 1 = in flight, 2 = finished
};

// One client's operation loop: RunWorkload's mix logic with per-kind
// counting. Runs entirely on the client's thread with private keys/rng;
// only the Inverda facade is shared.
void RunClient(Inverda* db, const ConcurrentClientSpec& spec,
               const ConcurrentOptions& options, MigrationWindow* window,
               ConcurrentClientResult* out) {
  Random rng(options.seed);
  std::vector<int64_t> keys = spec.initial_keys;
  const WorkloadTarget& target = spec.target;
  // Per-op-kind latency as the client observes it (facade entry to return),
  // shared across clients through the registry's lock-free counters. Null
  // pointers (a no-op for ScopedTimer) when detailed timing is off, so a
  // plain throughput run pays no clock reads.
  obs::MetricsRegistry& metrics = db->Metrics();
  const bool timed = metrics.timing_enabled();
  obs::Histogram* read_ns =
      timed ? metrics.histogram("workload.read_ns") : nullptr;
  obs::Histogram* insert_ns =
      timed ? metrics.histogram("workload.insert_ns") : nullptr;
  obs::Histogram* update_ns =
      timed ? metrics.histogram("workload.update_ns") : nullptr;
  obs::Histogram* delete_ns =
      timed ? metrics.histogram("workload.delete_ns") : nullptr;
  auto fail = [out](const Status& s) { out->status = s; };
  // A legally rejected write (random rows colliding with invisible tuples
  // or violating a partition condition) when tolerate_rejections is on.
  auto rejected = [&options, out](const Status& s) {
    if (!options.tolerate_rejections) return false;
    if (s.code() != StatusCode::kConstraintViolation &&
        s.code() != StatusCode::kInvalidArgument) {
      return false;
    }
    ++out->rejections;
    return true;
  };
  auto count = [window, out](int64_t* slot) {
    ++*slot;
    if (window == nullptr) return;
    window->ops.fetch_add(1, std::memory_order_acq_rel);
    if (window->state.load(std::memory_order_acquire) == 1) {
      ++out->ops_during_migration;
    }
  };
  for (int i = 0; i < options.ops_per_client; ++i) {
    double roll = rng.NextDouble();
    if (roll < spec.mix.reads || keys.empty()) {
      obs::ScopedTimer timer(read_ns);
      Result<std::vector<KeyedRow>> rows =
          db->Select(target.version, target.table);
      if (!rows.ok()) return fail(rows.status());
      count(&out->reads);
      continue;
    }
    roll -= spec.mix.reads;
    if (roll < spec.mix.inserts) {
      obs::ScopedTimer timer(insert_ns);
      Result<int64_t> key =
          db->Insert(target.version, target.table, target.make_row(&rng));
      if (key.ok()) {
        keys.push_back(*key);
        count(&out->inserts);
      } else if (!rejected(key.status())) {
        return fail(key.status());
      }
      continue;
    }
    roll -= spec.mix.inserts;
    size_t pick = static_cast<size_t>(rng.NextUint64(keys.size()));
    int64_t key = keys[pick];
    if (roll < spec.mix.updates) {
      obs::ScopedTimer timer(update_ns);
      // Update only if the row is visible through this version's table
      // (it cannot vanish concurrently: keys are client-private and
      // migrations preserve content).
      Result<std::optional<Row>> current =
          db->Get(target.version, target.table, key);
      if (!current.ok()) return fail(current.status());
      if (*current) {
        Status s = db->Update(target.version, target.table, key,
                              target.make_row(&rng));
        if (!s.ok() && !rejected(s)) return fail(s);
      }
      count(&out->updates);
      continue;
    }
    obs::ScopedTimer timer(delete_ns);
    Status s = db->Delete(target.version, target.table, key);
    if (!s.ok() && !rejected(s)) return fail(s);
    keys[pick] = keys.back();
    keys.pop_back();
    count(&out->deletes);
  }
  out->final_keys = std::move(keys);
}

}  // namespace

ConcurrentResult RunConcurrentWorkload(
    Inverda* db, const std::vector<ConcurrentClientSpec>& clients,
    const ConcurrentOptions& options) {
  ConcurrentResult result;
  result.clients.resize(clients.size());
  std::atomic<int> running{static_cast<int>(clients.size())};
  MigrationWindow window;
  MigrationWindow* window_ptr = options.migrate_during ? &window : nullptr;

  double start = NowSeconds();
  std::vector<std::thread> threads;
  threads.reserve(clients.size());
  for (size_t i = 0; i < clients.size(); ++i) {
    threads.emplace_back([&, i] {
      ConcurrentOptions mine = options;
      mine.seed = options.seed + 0x9e3779b97f4a7c15ULL * (i + 1);
      RunClient(db, clients[i], mine, window_ptr, &result.clients[i]);
      running.fetch_sub(1, std::memory_order_release);
    });
  }
  // The one-shot migration thread: wait for the workload to warm up, then
  // run the migration while the clients keep going. Fires even if the
  // clients drained early (the test still wants the migration to happen);
  // pacing the coordinator (TestHooks) is what guarantees overlap.
  std::thread migrator;
  if (options.migrate_during) {
    migrator = std::thread([&] {
      while (window.ops.load(std::memory_order_acquire) <
                 options.migrate_after_ops &&
             running.load(std::memory_order_acquire) > 0) {
        std::this_thread::yield();
      }
      window.state.store(1, std::memory_order_release);
      result.migrate_status = options.migrate_during();
      result.migrate_fired = true;
      window.state.store(2, std::memory_order_release);
    });
  }
  // The DBA thread keeps flipping until every client finished, so the
  // clients race against a live schema administrator for their whole run.
  std::thread dba;
  if (options.dba_action) {
    dba = std::thread([&] {
      do {  // at least one action, even if the clients already finished
        Status s = options.dba_action();
        ++result.dba_iterations;
        if (!s.ok()) {
          result.dba_status = s;
          return;
        }
        std::this_thread::yield();
      } while (running.load(std::memory_order_acquire) > 0);
    });
  }
  for (std::thread& t : threads) t.join();
  if (dba.joinable()) dba.join();
  if (migrator.joinable()) migrator.join();
  result.seconds = NowSeconds() - start;
  return result;
}

}  // namespace inverda
