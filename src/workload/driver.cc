#include "workload/driver.h"

#include <chrono>
#include <cmath>

namespace inverda {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double AdoptionFraction(int t, int total) {
  // Logistic curve centered at the half-way point, spanning ~[-6, 6].
  double x = 12.0 * (static_cast<double>(t) / static_cast<double>(total)) -
             6.0;
  return 1.0 / (1.0 + std::exp(-x));
}

Result<double> RunWorkload(Inverda* db, const WorkloadTarget& target,
                           const OpMix& mix, int num_ops, Random* rng,
                           std::vector<int64_t>* keys) {
  double start = NowSeconds();
  for (int i = 0; i < num_ops; ++i) {
    double roll = rng->NextDouble();
    if (roll < mix.reads || keys->empty()) {
      INVERDA_ASSIGN_OR_RETURN(std::vector<KeyedRow> rows,
                               db->Select(target.version, target.table));
      // Touch the result so the scan is not optimized away.
      if (!rows.empty() && rows[0].row.empty()) {
        return Status::Internal("empty payload row");
      }
      continue;
    }
    roll -= mix.reads;
    if (roll < mix.inserts) {
      INVERDA_ASSIGN_OR_RETURN(
          int64_t key,
          db->Insert(target.version, target.table, target.make_row(rng)));
      keys->push_back(key);
      continue;
    }
    roll -= mix.inserts;
    size_t pick = static_cast<size_t>(rng->NextUint64(keys->size()));
    int64_t key = (*keys)[pick];
    if (roll < mix.updates) {
      // Update only if the row is visible through this version's table.
      INVERDA_ASSIGN_OR_RETURN(std::optional<Row> current,
                               db->Get(target.version, target.table, key));
      if (current) {
        INVERDA_RETURN_IF_ERROR(db->Update(target.version, target.table, key,
                                           target.make_row(rng)));
      }
      continue;
    }
    INVERDA_RETURN_IF_ERROR(db->Delete(target.version, target.table, key));
    (*keys)[pick] = keys->back();
    keys->pop_back();
  }
  return NowSeconds() - start;
}

}  // namespace inverda
