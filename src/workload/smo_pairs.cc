#include "workload/smo_pairs.h"

#include "util/random.h"
#include "util/strings.h"

namespace inverda {
namespace {

// Split point for the horizontal partitioning variants: the `a` column is
// loaded uniformly from [0, 1000000).
constexpr const char* kLowCond = "a < 500000";
constexpr const char* kHighCond = "a >= 500000";

struct FirstSpec {
  std::string v1_script;  // CREATE SCHEMA VERSION v1 WITH ...
  std::string v2_script;  // CREATE SCHEMA VERSION v2 FROM v1 WITH ...
  std::string v1_table;   // the table read in v1
};

Result<FirstSpec> FirstFor(const std::string& kind) {
  if (kind == "add_column") {
    return FirstSpec{
        "CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INT, b TEXT)",
        "CREATE SCHEMA VERSION v2 FROM v1 WITH ADD COLUMN c INT AS a + 1 "
        "INTO R",
        "R"};
  }
  if (kind == "drop_column") {
    return FirstSpec{
        "CREATE SCHEMA VERSION v1 WITH CREATE TABLE R(a INT, b TEXT, c INT, "
        "d INT)",
        "CREATE SCHEMA VERSION v2 FROM v1 WITH DROP COLUMN d FROM R DEFAULT "
        "0",
        "R"};
  }
  if (kind == "split") {
    return FirstSpec{
        "CREATE SCHEMA VERSION v1 WITH CREATE TABLE T0(a INT, b TEXT, c INT)",
        std::string("CREATE SCHEMA VERSION v2 FROM v1 WITH SPLIT TABLE T0 "
                    "INTO R WITH ") +
            kLowCond + ", S0 WITH " + kHighCond,
        "T0"};
  }
  if (kind == "merge") {
    return FirstSpec{
        "CREATE SCHEMA VERSION v1 WITH CREATE TABLE Ra(a INT, b TEXT, c INT); "
        "CREATE TABLE Rb(a INT, b TEXT, c INT)",
        std::string("CREATE SCHEMA VERSION v2 FROM v1 WITH MERGE TABLE Ra (") +
            kLowCond + "), Rb (" + kHighCond + ") INTO R",
        "Ra"};
  }
  if (kind == "decompose_pk") {
    return FirstSpec{
        "CREATE SCHEMA VERSION v1 WITH CREATE TABLE W(a INT, b TEXT, c INT, "
        "x TEXT)",
        "CREATE SCHEMA VERSION v2 FROM v1 WITH DECOMPOSE TABLE W INTO "
        "R(a, b, c), X0(x) ON PK",
        "W"};
  }
  if (kind == "join_pk") {
    return FirstSpec{
        "CREATE SCHEMA VERSION v1 WITH CREATE TABLE A0(a INT, b TEXT); "
        "CREATE TABLE B0(c INT)",
        "CREATE SCHEMA VERSION v2 FROM v1 WITH OUTER JOIN TABLE A0, B0 INTO "
        "R ON PK",
        "A0"};
  }
  if (kind == "decompose_fk") {
    return FirstSpec{
        "CREATE SCHEMA VERSION v1 WITH CREATE TABLE W(a INT, b TEXT, c INT)",
        "CREATE SCHEMA VERSION v2 FROM v1 WITH DECOMPOSE TABLE W INTO "
        "R(a, b), C0(c) ON FK cref",
        "W"};
  }
  return Status::InvalidArgument("unknown first SMO kind " + kind);
}

// The second SMO evolves v2's R into v3; the script may depend on R's
// schema in v2 (column names vary with the first SMO).
Result<std::pair<std::string, std::string>> SecondFor(
    const std::string& kind, const TableSchema& r_schema) {
  if (kind == "add_column") {
    return std::pair<std::string, std::string>{
        "CREATE SCHEMA VERSION v3 FROM v2 WITH ADD COLUMN z INT AS a + 2 "
        "INTO R",
        "R"};
  }
  if (kind == "drop_column") {
    return std::pair<std::string, std::string>{
        "CREATE SCHEMA VERSION v3 FROM v2 WITH DROP COLUMN b FROM R DEFAULT "
        "''",
        "R"};
  }
  if (kind == "split") {
    return std::pair<std::string, std::string>{
        std::string("CREATE SCHEMA VERSION v3 FROM v2 WITH SPLIT TABLE R "
                    "INTO R1 WITH a < 250000, R2 WITH a >= 250000"),
        "R1"};
  }
  if (kind == "decompose_pk") {
    // R(a, rest...) -> R1(a), R2(rest...).
    std::vector<std::string> rest;
    for (const Column& c : r_schema.columns()) {
      if (!EqualsIgnoreCase(c.name, "a")) rest.push_back(c.name);
    }
    if (rest.empty()) {
      return Status::InvalidArgument("R too narrow for decompose");
    }
    return std::pair<std::string, std::string>{
        "CREATE SCHEMA VERSION v3 FROM v2 WITH DECOMPOSE TABLE R INTO "
        "R1(a), R2(" +
            Join(rest, ", ") + ") ON PK",
        "R1"};
  }
  return Status::InvalidArgument("unknown second SMO kind " + kind);
}

}  // namespace

std::vector<std::string> FirstSmoKinds() {
  return {"add_column", "drop_column", "split",       "merge",
          "decompose_pk", "join_pk",   "decompose_fk"};
}

std::vector<std::string> SecondSmoKinds() {
  return {"add_column", "drop_column", "split", "decompose_pk"};
}

Result<SmoPairScenario> BuildSmoPair(const std::string& first_kind,
                                     const std::string& second_kind, int rows,
                                     uint64_t seed) {
  SmoPairScenario scenario;
  scenario.db = std::make_unique<Inverda>();
  scenario.first_kind = first_kind;
  scenario.second_kind = second_kind;
  Inverda& db = *scenario.db;

  INVERDA_ASSIGN_OR_RETURN(FirstSpec first, FirstFor(first_kind));
  INVERDA_RETURN_IF_ERROR(db.Execute(first.v1_script));
  INVERDA_RETURN_IF_ERROR(db.Execute(first.v2_script));
  scenario.v1_table = first.v1_table;
  scenario.v2_table = "R";

  INVERDA_ASSIGN_OR_RETURN(TableSchema r_schema, db.GetSchema("v2", "R"));
  INVERDA_ASSIGN_OR_RETURN(auto second, SecondFor(second_kind, r_schema));
  INVERDA_RETURN_IF_ERROR(db.Execute(second.first));
  scenario.v3_table = second.second;

  // Load through v2's R so every first-SMO variant gets the same data shape.
  Random rng(seed);
  scenario.keys.reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    Row row;
    for (const Column& c : r_schema.columns()) {
      if (EqualsIgnoreCase(c.name, "a")) {
        row.push_back(Value::Int(rng.NextInt64(0, 999999)));
      } else if (EqualsIgnoreCase(c.name, "cref")) {
        // The generated foreign key of the decompose_fk variant: loading
        // rows with random references would dangle; NULL means "no
        // partner yet".
        row.push_back(Value::Null());
      } else if (c.type == DataType::kInt64) {
        row.push_back(Value::Int(rng.NextInt64(0, 1000)));
      } else {
        row.push_back(Value::String(rng.NextString(8)));
      }
    }
    INVERDA_ASSIGN_OR_RETURN(int64_t key, db.Insert("v2", "R", std::move(row)));
    scenario.keys.push_back(key);
  }
  return scenario;
}

}  // namespace inverda
