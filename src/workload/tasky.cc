#include "workload/tasky.h"

#include "handwritten/reference_sql.h"

namespace inverda {

Row RandomTaskRow(Random* rng, int num_authors) {
  std::string author =
      "author" + std::to_string(rng->NextUint64(
                     static_cast<uint64_t>(num_authors)));
  std::string task = "task-" + rng->NextString(12);
  // Priority 1 is most frequent (roughly half), matching the motivation
  // that Do! shows the urgent tasks.
  int64_t prio;
  double roll = rng->NextDouble();
  if (roll < 0.5) {
    prio = 1;
  } else if (roll < 0.8) {
    prio = 2;
  } else {
    prio = 3;
  }
  return {Value::String(std::move(author)), Value::String(std::move(task)),
          Value::Int(prio)};
}

Result<TaskyScenario> BuildTasky(const TaskyOptions& options) {
  TaskyScenario scenario;
  scenario.db = std::make_unique<Inverda>();
  Inverda& db = *scenario.db;

  INVERDA_RETURN_IF_ERROR(db.Execute(BidelInitialScript()));
  if (options.create_do) {
    INVERDA_RETURN_IF_ERROR(db.Execute(BidelDoScript()));
  }
  if (options.create_tasky2) {
    INVERDA_RETURN_IF_ERROR(db.Execute(BidelEvolutionScript()));
  }

  Random rng(options.seed);
  scenario.task_keys.reserve(static_cast<size_t>(options.num_tasks));
  for (int i = 0; i < options.num_tasks; ++i) {
    INVERDA_ASSIGN_OR_RETURN(
        int64_t key,
        db.Insert(TaskyScenario::kTasKy, "Task",
                  RandomTaskRow(&rng, options.num_authors)));
    scenario.task_keys.push_back(key);
  }
  return scenario;
}

}  // namespace inverda
