#ifndef INVERDA_WORKLOAD_ADVISOR_H_
#define INVERDA_WORKLOAD_ADVISOR_H_

#include <map>
#include <set>
#include <string>

#include "catalog/catalog.h"
#include "util/status.h"

namespace inverda {

/// Legacy advisor surface, superseded by the `advisor::Advisor` subsystem
/// (src/advisor/advisor.h). That subsystem profiles the live workload,
/// prices candidates with observed kernel latencies, and can apply the
/// winner online; this free function only ever scored hand-typed weights
/// with uniform hop costs. Kept for one PR as a delegating shim.
struct AdvisorRecommendation {
  std::set<SmoId> materialization;
  double expected_cost = 0.0;

  /// Cost of every candidate, for reporting (keyed by a printable label).
  std::map<std::string, double> candidate_costs;
};

/// `version_weights` maps schema version names to their share of the
/// workload. Weights are validated (non-empty, non-negative, not all zero)
/// and normalized to sum to 1 before scoring; the cost of a candidate is
/// the weighted average propagation distance (+1 for local access).
[[deprecated(
    "use advisor::Advisor::Recommend(AdviseOptions) — set "
    "AdviseOptions::version_weights for explicit weights")]]
Result<AdvisorRecommendation> RecommendMaterialization(
    const VersionCatalog& catalog,
    const std::map<std::string, double>& version_weights);

}  // namespace inverda

#endif  // INVERDA_WORKLOAD_ADVISOR_H_
