#ifndef INVERDA_WORKLOAD_ADVISOR_H_
#define INVERDA_WORKLOAD_ADVISOR_H_

#include <map>
#include <set>
#include <string>

#include "inverda/inverda.h"
#include "util/status.h"

namespace inverda {

/// A simple materialization advisor — the paper's future-work item of a
/// self-managing physical table schema (Section 8.2 imagines "an advisor
/// tool supporting the optimization task"). Given the fraction of accesses
/// hitting each schema version, it scores every valid materialization
/// schema by the expected propagation distance and recommends the best.
struct AdvisorRecommendation {
  std::set<SmoId> materialization;
  double expected_cost = 0.0;

  /// Cost of every candidate, for reporting (keyed by a printable label).
  std::map<std::string, double> candidate_costs;
};

/// `version_weights` maps schema version names to their share of the
/// workload (need not sum to 1). The cost of a candidate materialization is
/// the weighted sum over versions of the average propagation distance of
/// that version's tables (+1 for local access), approximating the per-SMO
/// overhead the evaluation measures.
Result<AdvisorRecommendation> RecommendMaterialization(
    const VersionCatalog& catalog,
    const std::map<std::string, double>& version_weights);

}  // namespace inverda

#endif  // INVERDA_WORKLOAD_ADVISOR_H_
