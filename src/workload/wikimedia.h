#ifndef INVERDA_WORKLOAD_WIKIMEDIA_H_
#define INVERDA_WORKLOAD_WIKIMEDIA_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "inverda/inverda.h"
#include "util/status.h"

namespace inverda {

/// Synthetic stand-in for the Wikimedia schema evolution history used in
/// Section 8: 171 schema versions connected by 211 SMO instances whose kind
/// histogram matches Table 4 of the paper exactly (42 CREATE TABLE, 10 DROP
/// TABLE, 1 RENAME TABLE, 95 ADD COLUMN, 21 DROP COLUMN, 36 RENAME COLUMN,
/// 4 DECOMPOSE, 2 MERGE, 0 JOIN, 0 SPLIT). The real Wikimedia DDL history is
/// not redistributable; the experiments only depend on the genealogy's
/// shape (a long chain dominated by column-level SMOs around a central
/// "page" lineage), which this generator reproduces.
struct WikimediaScenario {
  std::unique_ptr<Inverda> db;

  /// Version names in order: "v001" ... "v171".
  std::vector<std::string> versions;

  /// Name of the central page-lineage table within each version (renames
  /// can change it).
  std::vector<std::string> page_table;

  /// Name of the links table within each version.
  std::vector<std::string> links_table;

  /// Number of SMO instances per kind, for the Table 4 reproduction.
  std::map<SmoKind, int> histogram;
};

struct WikimediaOptions {
  int num_versions = 171;
  uint64_t seed = 7;
};

/// Builds the full genealogy (schema only; no data).
Result<WikimediaScenario> BuildWikimedia(const WikimediaOptions& options);

/// Loads synthetic pages and links through version `version_index`
/// (0-based), mirroring the paper's load of the Akan wiki at the 109th
/// version. Returns the keys of the loaded pages.
Result<std::vector<int64_t>> LoadWikimediaData(WikimediaScenario* scenario,
                                               int version_index, int pages,
                                               int links, uint64_t seed);

}  // namespace inverda

#endif  // INVERDA_WORKLOAD_WIKIMEDIA_H_
