#include "workload/wikimedia.h"

#include "util/random.h"
#include "util/strings.h"

namespace inverda {
namespace {

// One scheduled SMO of the synthetic history.
struct OpToken {
  std::string bidel;  // the SMO statement text
  SmoKind kind;
};

// Generator state shared while scheduling ops.
struct GenState {
  std::vector<std::string> page_cols{"title", "text", "counter"};
  std::vector<std::string> links_cols{"src", "dst"};
  std::string page_name = "cur";  // renamed to "page" mid-history
  std::string links_name = "links";
  int next_page_col = 0;
  int next_links_col = 0;
  int rename_counter = 0;
  int spare_counter = 0;
  int merge_counter = 0;
};

OpToken AddColumn(GenState* st, bool on_page) {
  std::string table = on_page ? st->page_name : st->links_name;
  std::string col = (on_page ? "pc" : "lc") +
                    std::to_string(on_page ? st->next_page_col++
                                           : st->next_links_col++);
  (on_page ? st->page_cols : st->links_cols).push_back(col);
  return {"ADD COLUMN " + col + " INT AS 0 INTO " + table,
          SmoKind::kAddColumn};
}

OpToken DropColumn(GenState* st, bool on_page) {
  std::vector<std::string>& cols = on_page ? st->page_cols : st->links_cols;
  std::string col = cols.back();
  cols.pop_back();
  std::string table = on_page ? st->page_name : st->links_name;
  return {"DROP COLUMN " + col + " FROM " + table + " DEFAULT 0",
          SmoKind::kDropColumn};
}

OpToken RenameColumn(GenState* st, bool on_page) {
  std::vector<std::string>& cols = on_page ? st->page_cols : st->links_cols;
  std::string from = cols.front();
  std::string to = "rn" + std::to_string(st->rename_counter++);
  // Rotate so successive renames touch different columns.
  cols.erase(cols.begin());
  cols.push_back(to);
  std::string table = on_page ? st->page_name : st->links_name;
  return {"RENAME COLUMN " + from + " IN " + table + " TO " + to,
          SmoKind::kRenameColumn};
}

OpToken CreateSpare(GenState* st) {
  std::string name = "aux" + std::to_string(++st->spare_counter);
  return {"CREATE TABLE " + name + "(c0 TEXT, c1 TEXT, c2 TEXT)",
          SmoKind::kCreateTable};
}

}  // namespace

Result<WikimediaScenario> BuildWikimedia(const WikimediaOptions& options) {
  WikimediaScenario scenario;
  scenario.db = std::make_unique<Inverda>();
  Inverda& db = *scenario.db;
  GenState st;

  auto version_name = [](int index) {
    std::string n = std::to_string(index + 1);
    while (n.size() < 3) n = "0" + n;
    return "v" + n;
  };

  // v001: the base schema (2 CREATE TABLE SMOs of the 42).
  INVERDA_RETURN_IF_ERROR(db.Execute(
      "CREATE SCHEMA VERSION v001 WITH "
      "CREATE TABLE cur(title TEXT, text TEXT, counter INT); "
      "CREATE TABLE links(src TEXT, dst TEXT);"));
  scenario.histogram[SmoKind::kCreateTable] += 2;

  // Schedule the remaining 209 SMOs in a feasible deterministic order
  // matching the Table 4 histogram exactly (see wikimedia.h).
  std::vector<OpToken> ops;
  for (int i = 0; i < 8; ++i) ops.push_back(CreateSpare(&st));     // aux1-8
  for (int i = 0; i < 30; ++i) ops.push_back(AddColumn(&st, true));
  for (int i = 0; i < 10; ++i) ops.push_back(RenameColumn(&st, true));
  for (int i = 0; i < 2; ++i) ops.push_back(CreateSpare(&st));     // aux9-10
  for (int i = 0; i < 10; ++i) ops.push_back(AddColumn(&st, false));
  ops.push_back({"RENAME TABLE cur INTO page", SmoKind::kRenameTable});
  st.page_name = "page";
  for (int i = 0; i < 8; ++i) ops.push_back(DropColumn(&st, true));
  for (int i = 0; i < 10; ++i) ops.push_back(CreateSpare(&st));    // aux11-20
  for (int i = 0; i < 15; ++i) ops.push_back(AddColumn(&st, true));
  for (int i = 0; i < 10; ++i) ops.push_back(RenameColumn(&st, true));
  for (int i = 1; i <= 4; ++i) {
    std::string t = "aux" + std::to_string(i);
    ops.push_back({"DECOMPOSE TABLE " + t + " INTO " + t + "a(c0), " + t +
                       "b(c1, c2) ON PK",
                   SmoKind::kDecompose});
  }
  for (int i = 0; i < 10; ++i) {
    // Column churn on the spares aux5-aux8 (rotating, unique names).
    std::string t = "aux" + std::to_string(5 + (i % 4));
    ops.push_back({"ADD COLUMN x" + std::to_string(i) + " TEXT AS '' INTO " +
                       t,
                   SmoKind::kAddColumn});
  }
  for (int i = 0; i < 2; ++i) {
    std::string a = "aux" + std::to_string(9 + 2 * i);
    std::string b = "aux" + std::to_string(10 + 2 * i);
    std::string m = "merged" + std::to_string(++st.merge_counter);
    ops.push_back({"MERGE TABLE " + a + " (c0 < 'm'), " + b +
                       " (c0 >= 'm') INTO " + m,
                   SmoKind::kMerge});
  }
  for (int i = 13; i <= 20; ++i) {
    ops.push_back({"DROP TABLE aux" + std::to_string(i),
                   SmoKind::kDropTable});
  }
  ops.push_back({"DROP TABLE merged1", SmoKind::kDropTable});
  ops.push_back({"DROP TABLE merged2", SmoKind::kDropTable});
  for (int i = 0; i < 10; ++i) ops.push_back(CreateSpare(&st));    // aux21-30
  for (int i = 0; i < 15; ++i) ops.push_back(AddColumn(&st, true));
  for (int i = 0; i < 5; ++i) ops.push_back(AddColumn(&st, false));
  for (int i = 0; i < 10; ++i) ops.push_back(DropColumn(&st, true));
  for (int i = 0; i < 10; ++i) ops.push_back(RenameColumn(&st, true));
  for (int i = 0; i < 6; ++i) ops.push_back(RenameColumn(&st, false));
  for (int i = 0; i < 10; ++i) ops.push_back(CreateSpare(&st));    // aux31-40
  for (int i = 0; i < 3; ++i) ops.push_back(DropColumn(&st, false));
  for (int i = 0; i < 10; ++i) ops.push_back(AddColumn(&st, true));

  int steps = options.num_versions - 1;
  if (static_cast<int>(ops.size()) < steps) {
    return Status::Internal("op schedule shorter than version count");
  }

  scenario.versions.push_back("v001");
  // Track table names per version (the rename changes the page name).
  std::string page_now = "cur";
  scenario.page_table.push_back(page_now);
  scenario.links_table.push_back("links");

  size_t op_index = 0;
  for (int step = 0; step < steps; ++step) {
    std::string from = version_name(step);
    std::string to = version_name(step + 1);
    // Spread the remaining SMOs evenly over the remaining versions
    // (ceiling division keeps the schedule exactly consumed for any
    // history length).
    int remaining_ops = static_cast<int>(ops.size() - op_index);
    int remaining_steps = steps - step;
    int take = (remaining_ops + remaining_steps - 1) / remaining_steps;
    std::string script = "CREATE SCHEMA VERSION " + to + " FROM " + from +
                         " WITH ";
    for (int i = 0; i < take; ++i) {
      const OpToken& op = ops[op_index++];
      script += op.bidel + "; ";
      scenario.histogram[op.kind] += 1;
      if (op.kind == SmoKind::kRenameTable) page_now = "page";
    }
    INVERDA_RETURN_IF_ERROR(db.Execute(script));
    scenario.versions.push_back(to);
    scenario.page_table.push_back(page_now);
    scenario.links_table.push_back("links");
  }
  if (op_index != ops.size()) {
    return Status::Internal("op schedule not fully consumed");
  }
  return scenario;
}

Result<std::vector<int64_t>> LoadWikimediaData(WikimediaScenario* scenario,
                                               int version_index, int pages,
                                               int links, uint64_t seed) {
  Inverda& db = *scenario->db;
  const std::string& version =
      scenario->versions[static_cast<size_t>(version_index)];
  const std::string& page =
      scenario->page_table[static_cast<size_t>(version_index)];
  const std::string& link_table =
      scenario->links_table[static_cast<size_t>(version_index)];
  Random rng(seed);

  auto random_row = [&rng](const TableSchema& schema) {
    Row row;
    for (const Column& c : schema.columns()) {
      if (c.type == DataType::kInt64) {
        row.push_back(Value::Int(rng.NextInt64(0, 1000)));
      } else if (c.type == DataType::kDouble) {
        row.push_back(Value::Double(rng.NextDouble()));
      } else if (c.type == DataType::kBool) {
        row.push_back(Value::Bool(rng.NextBool(0.5)));
      } else {
        row.push_back(Value::String(rng.NextString(10)));
      }
    }
    return row;
  };

  INVERDA_ASSIGN_OR_RETURN(TableSchema page_schema,
                           db.GetSchema(version, page));
  std::vector<int64_t> keys;
  keys.reserve(static_cast<size_t>(pages));
  for (int i = 0; i < pages; ++i) {
    INVERDA_ASSIGN_OR_RETURN(int64_t key,
                             db.Insert(version, page, random_row(page_schema)));
    keys.push_back(key);
  }
  INVERDA_ASSIGN_OR_RETURN(TableSchema links_schema,
                           db.GetSchema(version, link_table));
  for (int i = 0; i < links; ++i) {
    INVERDA_RETURN_IF_ERROR(
        db.Insert(version, link_table, random_row(links_schema)).status());
  }
  return keys;
}

}  // namespace inverda
