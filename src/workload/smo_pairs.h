#ifndef INVERDA_WORKLOAD_SMO_PAIRS_H_
#define INVERDA_WORKLOAD_SMO_PAIRS_H_

#include <memory>
#include <string>
#include <vector>

#include "inverda/inverda.h"
#include "util/status.h"

namespace inverda {

/// Generator for the two-SMO micro benchmark of Figure 13: three schema
/// versions connected by two SMOs, where the middle version always contains
/// a table R the second SMO evolves:
///     v1  --SMO1-->  v2 (contains R)  --SMO2-->  v3
/// Data is loaded through v2's R; reads are measured on each version under
/// materializations matching v1 / v2 / v3.
struct SmoPairScenario {
  std::unique_ptr<Inverda> db;
  std::string first_kind;
  std::string second_kind;

  /// The table to read in each version ("the R lineage").
  std::string v1_table;
  std::string v2_table;  // always "R"
  std::string v3_table;

  std::vector<int64_t> keys;
};

/// First-SMO kinds: how v2's R(a, b, c)-like table is produced from v1.
std::vector<std::string> FirstSmoKinds();

/// Second-SMO kinds applicable to R (ADD COLUMN is the paper's Figure 13
/// subject; the "all pairs" sweep uses the full list).
std::vector<std::string> SecondSmoKinds();

/// Builds the scenario and loads `rows` tuples through v2's R.
Result<SmoPairScenario> BuildSmoPair(const std::string& first_kind,
                                     const std::string& second_kind, int rows,
                                     uint64_t seed);

}  // namespace inverda

#endif  // INVERDA_WORKLOAD_SMO_PAIRS_H_
