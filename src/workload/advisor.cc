#include "workload/advisor.h"

#include "util/strings.h"

namespace inverda {
namespace {

// Propagation distance of table version `tv` under materialization `m`:
// the number of SMO instances between the table version and its data.
int DistanceUnder(const VersionCatalog& catalog, const std::set<SmoId>& m,
                  TvId tv) {
  auto in_schema = [&](SmoId id) {
    const SmoInstance& inst = catalog.smo(id);
    if (inst.smo->kind() == SmoKind::kCreateTable) return true;
    if (inst.smo->kind() == SmoKind::kDropTable) return false;
    return m.count(id) > 0;
  };
  int distance = 0;
  TvId current = tv;
  while (distance < 1000) {
    const TableVersion& info = catalog.table_version(current);
    bool incoming = in_schema(info.incoming);
    SmoId forward = -1;
    for (SmoId out : info.outgoing) {
      if (in_schema(out)) forward = out;
    }
    if (incoming && forward < 0) return distance;  // physical here
    ++distance;
    if (forward >= 0) {
      const SmoInstance& inst = catalog.smo(forward);
      if (inst.targets.empty()) return distance;
      current = inst.targets[0];
    } else {
      const SmoInstance& inst = catalog.smo(info.incoming);
      if (inst.sources.empty()) return distance;
      current = inst.sources[0];
    }
  }
  return distance;
}

std::string LabelFor(const VersionCatalog& catalog, const std::set<SmoId>& m) {
  std::vector<std::string> parts;
  for (SmoId id : m) {
    parts.push_back(SmoKindName(catalog.smo(id).smo->kind()) + std::string("#") +
                    std::to_string(id));
  }
  if (parts.empty()) return "{}";
  return "{" + Join(parts, ", ") + "}";
}

}  // namespace

Result<AdvisorRecommendation> RecommendMaterialization(
    const VersionCatalog& catalog,
    const std::map<std::string, double>& version_weights) {
  INVERDA_ASSIGN_OR_RETURN(std::vector<std::set<SmoId>> candidates,
                           catalog.EnumerateValidMaterializations());
  AdvisorRecommendation best;
  bool first = true;
  for (const std::set<SmoId>& m : candidates) {
    double cost = 0.0;
    for (const auto& [version, weight] : version_weights) {
      INVERDA_ASSIGN_OR_RETURN(const SchemaVersionInfo* info,
                               catalog.FindVersion(version));
      double distance_sum = 0.0;
      for (const auto& [name, tv] : info->tables) {
        (void)name;
        distance_sum += 1.0 + DistanceUnder(catalog, m, tv);
      }
      if (!info->tables.empty()) {
        cost += weight * distance_sum /
                static_cast<double>(info->tables.size());
      }
    }
    best.candidate_costs[LabelFor(catalog, m)] = cost;
    if (first || cost < best.expected_cost) {
      best.expected_cost = cost;
      best.materialization = m;
      first = false;
    }
  }
  if (first) {
    return Status::InvalidState("no valid materialization schema found");
  }
  return best;
}

}  // namespace inverda
