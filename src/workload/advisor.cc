#include "workload/advisor.h"

#include "advisor/advisor.h"

namespace inverda {

// Delegating shim: explicit weights override the profiler, and the uniform
// cost model (base 1, hop 1) reproduces the legacy 1+distance scoring, so
// the recommended schema matches what this function always returned. The
// only visible change is that weights are now validated and normalized, so
// reported costs are per unit of workload rather than per unit of weight.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
Result<AdvisorRecommendation> RecommendMaterialization(
    const VersionCatalog& catalog,
    const std::map<std::string, double>& version_weights) {
  INVERDA_ASSIGN_OR_RETURN(
      advisor::WorkloadProfile profile,
      advisor::ProfileFromWeights(catalog, version_weights,
                                  /*read_fraction=*/1.0));
  INVERDA_ASSIGN_OR_RETURN(
      advisor::AdviseReport report,
      advisor::ScoreMaterializations(catalog, profile,
                                     advisor::CostModel::Uniform()));
  AdvisorRecommendation best;
  best.materialization = report.best().materialization;
  best.expected_cost = report.best().total_cost;
  for (const advisor::CandidateScore& candidate : report.ranked) {
    best.candidate_costs[candidate.label] = candidate.total_cost;
  }
  return best;
}
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace inverda
