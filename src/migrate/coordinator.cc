#include "migrate/coordinator.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <shared_mutex>
#include <sstream>
#include <utility>

#include "inverda/inverda.h"
#include "obs/observability.h"

namespace inverda {
namespace migrate {
namespace {

constexpr int kDefaultChunkKeys = 512;
constexpr int kMaxCatchUpRounds = 8;

// True when every SMO touching `component` maps a write with key set K to
// view changes at keys within K. Column SMOs, renames, partition SPLIT/
// MERGE and PK-method DECOMPOSE/JOIN all carry the InVerDa key `p`
// unchanged between source and target rows; DECOMPOSE/JOIN with an FK or
// condition method generate rows under fresh identifiers, so a write with
// key k can move a derived row with a different key — those components
// fall back to wholesale refresh.
bool ComponentKeyStable(const VersionCatalog& catalog,
                        const std::set<TvId>& component) {
  for (SmoId id : catalog.AllSmos()) {
    const SmoInstance& inst = catalog.smo(id);
    bool touches = false;
    for (TvId tv : inst.sources) touches = touches || component.count(tv) > 0;
    for (TvId tv : inst.targets) touches = touches || component.count(tv) > 0;
    if (!touches) continue;
    if (inst.smo->kind() == SmoKind::kDecompose) {
      const auto& smo = static_cast<const DecomposeSmo&>(*inst.smo);
      if (smo.method() != VerticalMethod::kPk) return false;
    } else if (inst.smo->kind() == SmoKind::kJoin) {
      const auto& smo = static_cast<const JoinSmo&>(*inst.smo);
      if (smo.method() != VerticalMethod::kPk) return false;
    }
  }
  return true;
}

}  // namespace

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kIdle:
      return "idle";
    case Phase::kCopy:
      return "copy";
    case Phase::kCatchUp:
      return "catchup";
    case Phase::kFlip:
      return "flip";
    case Phase::kDone:
      return "done";
    case Phase::kAborted:
      return "aborted";
    case Phase::kFailed:
      return "failed";
  }
  return "?";
}

std::string FormatMigrationStatus(const MigrationStatus& status) {
  if (status.id == 0) return "no migration has run";
  std::ostringstream out;
  out << "#" << status.id << " " << PhaseName(status.phase)
      << " targets=" << status.label << " copied=" << status.rows_copied
      << " chunks=" << status.chunks << " captured=" << status.keys_captured
      << " drained=" << status.keys_drained
      << " rounds=" << status.catchup_rounds
      << " refreshes=" << status.refreshes
      << " flip_keys=" << status.flip_keys << " flip_us=" << status.flip_ns / 1000;
  if (!status.active && !status.result.ok()) {
    out << " error=" << status.result.message();
  }
  return out.str();
}

MigrationCoordinator::MigrationCoordinator(Inverda* owner,
                                           obs::Observability* obs)
    : owner_(owner), obs_(obs) {
  obs::MetricsRegistry& m = obs_->metrics;
  mig_started_ = m.counter("migrate.started");
  mig_committed_ = m.counter("migrate.committed");
  mig_aborted_ = m.counter("migrate.aborted");
  mig_failed_ = m.counter("migrate.failed");
  mig_rows_copied_ = m.counter("migrate.rows_copied");
  mig_chunks_ = m.counter("migrate.chunks");
  mig_keys_captured_ = m.counter("migrate.keys_captured");
  mig_keys_drained_ = m.counter("migrate.keys_drained");
  mig_refreshes_ = m.counter("migrate.refreshes");
  mig_chunk_ns_ = m.histogram("migrate.chunk_ns");
  mig_flip_ns_ = m.histogram("migrate.flip_ns");
  m.RegisterSource("migration", [this] {
    return std::vector<obs::MetricValue>{
        {"migration.active", active() ? 1 : 0},
        {"migration.phase",
         static_cast<int64_t>(phase_.load(std::memory_order_acquire))}};
  });
}

MigrationCoordinator::~MigrationCoordinator() {
  abort_.store(true, std::memory_order_release);
  if (worker_.joinable()) worker_.join();
}

void MigrationCoordinator::set_test_hooks(TestHooks hooks) {
  hooks_ = std::move(hooks);
}

Status MigrationCoordinator::Reap() {
  if (active()) {
    return Status::InvalidState("an online migration is already in progress");
  }
  if (worker_.joinable()) worker_.join();
  return Status::OK();
}

Status MigrationCoordinator::Start(const std::vector<std::string>& targets) {
  std::lock_guard<std::mutex> admission(start_mu_);
  INVERDA_RETURN_IF_ERROR(Reap());
  std::string label;
  for (const std::string& t : targets) {
    if (!label.empty()) label += ",";
    label += t;
  }
  std::unique_lock<std::shared_mutex> ddl(owner_->catalog_mu_);
  INVERDA_ASSIGN_OR_RETURN(
      std::set<SmoId> m, owner_->ResolveMaterializationLocked(targets));
  Status admitted = StartLocked(m, std::move(label));
  ddl.unlock();
  if (admitted.ok() && active()) worker_ = std::thread([this] { Run(); });
  return admitted;
}

Status MigrationCoordinator::StartSchema(const std::set<SmoId>& m) {
  std::lock_guard<std::mutex> admission(start_mu_);
  INVERDA_RETURN_IF_ERROR(Reap());
  std::string label = "schema{";
  for (SmoId id : m) label += std::to_string(id) + " ";
  if (label.back() == ' ') label.back() = '}';
  else label += "}";
  std::unique_lock<std::shared_mutex> ddl(owner_->catalog_mu_);
  Status admitted = StartLocked(m, std::move(label));
  ddl.unlock();
  if (admitted.ok() && active()) worker_ = std::thread([this] { Run(); });
  return admitted;
}

Status MigrationCoordinator::StartLocked(const std::set<SmoId>& m,
                                         std::string label) {
  // Re-check under the exclusive catalog lock, like every other DDL path
  // (start_mu_ already serializes the Start paths; this keeps the invariant
  // local and covers any future caller).
  if (active()) {
    return Status::InvalidState("an online migration is already in progress");
  }
  VersionCatalog& catalog = owner_->catalog_;
  INVERDA_RETURN_IF_ERROR(catalog.CheckValidMaterialization(m));

  std::set<SmoId> old_m = catalog.CurrentMaterialization();
  if (old_m == m) {
    // Nothing to move: record a trivially committed migration.
    ResetProgress();
    phase_.store(static_cast<int>(Phase::kDone), std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(mu_);
      label_ = std::move(label);
      last_id_ += 1;
      result_ = Status::OK();
    }
    mig_started_->Add(1);
    mig_committed_->Add(1);
    return Status::OK();
  }

  auto job = std::make_unique<Job>();
  job->label = label;
  job->target_m = m;
  for (SmoId id : catalog.AllSmos()) {
    const SmoInstance& inst = catalog.smo(id);
    if (inst.smo->kind() == SmoKind::kCreateTable ||
        inst.smo->kind() == SmoKind::kDropTable) {
      continue;
    }
    bool was = old_m.count(id) > 0;
    bool will = m.count(id) > 0;
    if (was != will) job->flipping.push_back(id);
  }
  for (TvId tv : catalog.PhysicalTables(old_m)) job->old_physical.insert(tv);
  for (TvId tv : catalog.PhysicalTables(m)) job->new_physical.insert(tv);

  // Staged data tables: every newly physical relation.
  for (TvId tv : job->new_physical) {
    if (job->old_physical.count(tv)) continue;
    TableSchema schema = catalog.table_version(tv).schema;
    schema.set_name(catalog.DataTableName(tv));
    auto entry = std::make_unique<StagedEntry>(
        Table(std::move(schema), owner_->db_.shards()));
    entry->tv = tv;
    entry->physical_name = catalog.DataTableName(tv);
    entry->component = catalog.ComponentOf(tv);
    entry->key_stable = ComponentKeyStable(catalog, entry->component);
    job->entries.push_back(std::move(entry));
  }
  // Staged aux tables: the flipped side's newly required aux, always on the
  // wholesale-refresh path (aux derivation bypasses the latched scan path).
  for (SmoId id : job->flipping) {
    const SmoInstance& inst = catalog.smo(id);
    bool new_state = m.count(id) > 0;
    std::vector<std::string> old_aux =
        catalog.PhysicalAuxNames(id, inst.materialized);
    for (const std::string& aux : catalog.PhysicalAuxNames(id, new_state)) {
      bool existed = false;
      for (const std::string& o : old_aux) {
        if (o == aux) existed = true;
      }
      if (existed) continue;
      const AuxDef* def = nullptr;
      for (const AuxDef& d : inst.aux_defs) {
        if (d.short_name == aux) def = &d;
      }
      if (def == nullptr) {
        return Status::Internal("aux definition missing: " + aux);
      }
      std::string physical_name = catalog.AuxTableName(id, aux);
      auto entry = std::make_unique<StagedEntry>(Table(
          TableSchema(physical_name, def->payload), owner_->db_.shards()));
      entry->aux_smo = id;
      entry->aux_short = aux;
      entry->physical_name = std::move(physical_name);
      TvId anchor = inst.targets.empty() ? inst.sources[0] : inst.targets[0];
      entry->component = catalog.ComponentOf(anchor);
      entry->key_stable = false;
      job->entries.push_back(std::move(entry));
    }
  }

  // Staging succeeded — only now publish the new id/label, so a rejected
  // admission never pairs a fresh id with the previous migration's
  // phase/result in Snapshot().
  ResetProgress();
  {
    std::lock_guard<std::mutex> lock(mu_);
    label_ = std::move(label);
    last_id_ += 1;
  }
  abort_.store(false, std::memory_order_release);
  phase_.store(static_cast<int>(Phase::kCopy), std::memory_order_release);
  job_ = std::move(job);
  // Go live: from here every top-level write reports into the delta logs.
  owner_->access_.set_write_observer(this);
  active_.store(true, std::memory_order_release);
  mig_started_->Add(1);
  return Status::OK();
}

void MigrationCoordinator::ResetProgress() {
  rows_copied_.store(0);
  chunks_.store(0);
  keys_captured_.store(0);
  keys_drained_.store(0);
  catchup_rounds_.store(0);
  refreshes_.store(0);
  flip_keys_.store(0);
  flip_ns_.store(0);
}

Status MigrationCoordinator::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !active(); });
  return result_;
}

Status MigrationCoordinator::Abort() {
  if (!active()) return Status::OK();
  abort_.store(true, std::memory_order_release);
  Status terminal = Wait();
  Phase phase = static_cast<Phase>(phase_.load(std::memory_order_acquire));
  if (phase == Phase::kAborted || phase == Phase::kDone) return Status::OK();
  return terminal;
}

MigrationStatus MigrationCoordinator::Snapshot() const {
  MigrationStatus s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.id = last_id_;
    s.label = label_;
    s.result = result_;
  }
  s.active = active();
  s.phase = static_cast<Phase>(phase_.load(std::memory_order_acquire));
  s.rows_copied = rows_copied_.load(std::memory_order_relaxed);
  s.chunks = chunks_.load(std::memory_order_relaxed);
  s.keys_captured = keys_captured_.load(std::memory_order_relaxed);
  s.keys_drained = keys_drained_.load(std::memory_order_relaxed);
  s.catchup_rounds = catchup_rounds_.load(std::memory_order_relaxed);
  s.refreshes = refreshes_.load(std::memory_order_relaxed);
  s.flip_keys = flip_keys_.load(std::memory_order_relaxed);
  s.flip_ns = flip_ns_.load(std::memory_order_relaxed);
  return s;
}

void MigrationCoordinator::OnWrite(TvId tv, const WriteSet& writes) {
  Job* job = job_.get();
  if (job == nullptr) return;
  int64_t captured = 0;
  for (const auto& entry : job->entries) {
    if (entry->component.count(tv) == 0) continue;
    if (entry->key_stable) {
      std::lock_guard<std::mutex> lock(entry->mu);
      for (const WriteOp& op : writes.ops) {
        if (entry->pending.insert(op.key).second) ++captured;
      }
    } else {
      entry->dirty.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  if (captured > 0) {
    keys_captured_.fetch_add(captured, std::memory_order_relaxed);
    mig_keys_captured_->Add(captured);
  }
}

Status MigrationCoordinator::AbortedStatus() const {
  return Status::InvalidState("online migration aborted");
}

void MigrationCoordinator::Run() { Finish(RunPhases()); }

Status MigrationCoordinator::RunPhases() {
  INVERDA_RETURN_IF_ERROR(EnterPhase(Phase::kCopy));
  INVERDA_RETURN_IF_ERROR(CopyPhase());
  INVERDA_RETURN_IF_ERROR(EnterPhase(Phase::kCatchUp));
  INVERDA_RETURN_IF_ERROR(CatchUpPhase());
  INVERDA_RETURN_IF_ERROR(EnterPhase(Phase::kFlip));
  return FlipPhase();
}

Status MigrationCoordinator::EnterPhase(Phase phase) {
  if (abort_.load(std::memory_order_acquire)) return AbortedStatus();
  phase_.store(static_cast<int>(phase), std::memory_order_release);
  if (hooks_.on_phase) INVERDA_RETURN_IF_ERROR(hooks_.on_phase(phase));
  return Status::OK();
}

Status MigrationCoordinator::CopyPhase() {
  Job* job = job_.get();
  const int chunk =
      hooks_.chunk_keys > 0 ? hooks_.chunk_keys : kDefaultChunkKeys;
  for (const auto& ep : job->entries) {
    StagedEntry* e = ep.get();
    if (e->tv < 0 || !e->key_stable) continue;
    // Candidate keys: one key-collecting scan of the staged view itself —
    // exact by definition (covers rows living only in aux state, e.g. a
    // SPLIT's non-matching remainder). The scan takes shared latches, so
    // concurrent readers proceed and only writers of this component wait
    // out the single pass; rows arriving later land in the delta log.
    std::vector<int64_t> keys;
    {
      std::shared_lock<std::shared_mutex> ddl(owner_->catalog_mu_);
      INVERDA_RETURN_IF_ERROR(owner_->access_.ScanVersion(
          e->tv, [&keys](int64_t key, const Row&) { keys.push_back(key); }));
    }
    // Chunked backfill: each chunk re-acquires the shared DDL lock and
    // derives through the normal latched point-read path, so writers and
    // readers interleave between (and during) chunks.
    for (size_t at = 0; at < keys.size(); at += static_cast<size_t>(chunk)) {
      if (abort_.load(std::memory_order_acquire)) return AbortedStatus();
      size_t end = std::min(keys.size(), at + static_cast<size_t>(chunk));
      std::vector<int64_t> slice(keys.begin() + static_cast<int64_t>(at),
                                 keys.begin() + static_cast<int64_t>(end));
      {
        obs::ScopedTimer timer(mig_chunk_ns_);
        DerivedRows derived;
        {
          std::shared_lock<std::shared_mutex> ddl(owner_->catalog_mu_);
          INVERDA_RETURN_IF_ERROR(DeriveKeysLocked(e, slice, &derived));
        }
        std::lock_guard<std::mutex> lock(e->mu);
        for (auto& [key, row] : derived) {
          // A concurrently captured key is newer than this chunk's
          // derivation may be; leave it to the drain.
          if (e->pending.count(key) > 0) continue;
          if (row.has_value()) {
            INVERDA_RETURN_IF_ERROR(e->content.Upsert(key, std::move(*row)));
          } else {
            e->content.Erase(key);
          }
        }
      }
      rows_copied_.fetch_add(static_cast<int64_t>(slice.size()),
                             std::memory_order_relaxed);
      chunks_.fetch_add(1, std::memory_order_relaxed);
      mig_rows_copied_->Add(static_cast<int64_t>(slice.size()));
      mig_chunks_->Add(1);
      if (hooks_.after_chunk) hooks_.after_chunk();
    }
  }
  // Initial derivation of the wholesale-refresh entries.
  for (const auto& ep : job->entries) {
    StagedEntry* e = ep.get();
    if (e->tv >= 0 && e->key_stable) continue;
    if (abort_.load(std::memory_order_acquire)) return AbortedStatus();
    int64_t work = 0;
    INVERDA_RETURN_IF_ERROR(RefreshEntry(e, /*exclusive_held=*/false, &work));
    if (hooks_.after_chunk) hooks_.after_chunk();
  }
  return Status::OK();
}

Status MigrationCoordinator::CatchUpPhase() {
  Job* job = job_.get();
  for (int round = 0; round < kMaxCatchUpRounds; ++round) {
    if (abort_.load(std::memory_order_acquire)) return AbortedStatus();
    int64_t work = 0;
    for (const auto& ep : job->entries) {
      StagedEntry* e = ep.get();
      if (e->tv >= 0 && e->key_stable) {
        INVERDA_RETURN_IF_ERROR(DrainEntry(e, /*final_drain=*/false, &work));
      } else {
        INVERDA_RETURN_IF_ERROR(
            RefreshEntry(e, /*exclusive_held=*/false, &work));
      }
    }
    catchup_rounds_.fetch_add(1, std::memory_order_relaxed);
    if (work == 0) break;  // converged; a busy writer is cut off by the flip
  }
  return Status::OK();
}

Status MigrationCoordinator::FlipPhase() {
  Job* job = job_.get();
  obs::ScopedTimer flip_timer(mig_flip_ns_);
  auto flip_start = std::chrono::steady_clock::now();
  std::unique_lock<std::shared_mutex> ddl(owner_->catalog_mu_);
  // Final drain. Captures happen under the shared catalog lock, so holding
  // it exclusively makes the delta logs complete and frozen: replaying them
  // now is exact, and the remaining work is proportional to the keys
  // written since the last catch-up round — the bounded flip window.
  int64_t flip_work = 0;
  for (const auto& ep : job->entries) {
    StagedEntry* e = ep.get();
    if (e->tv >= 0 && e->key_stable) {
      INVERDA_RETURN_IF_ERROR(DrainEntry(e, /*final_drain=*/true, &flip_work));
    } else {
      INVERDA_RETURN_IF_ERROR(
          RefreshEntry(e, /*exclusive_held=*/true, &flip_work));
    }
  }
  flip_keys_.store(flip_work, std::memory_order_relaxed);
  if (hooks_.before_flip_commit) {
    INVERDA_RETURN_IF_ERROR(hooks_.before_flip_commit());
  }
  if (abort_.load(std::memory_order_acquire)) return AbortedStatus();
  // Detach capture before the swap: after the epoch flip writes route into
  // the new physical tables directly and need no replay.
  owner_->access_.set_write_observer(nullptr);
  Status committed = CommitLocked(job);
  flip_ns_.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - flip_start)
                     .count(),
                 std::memory_order_relaxed);
  return committed;
}

Status MigrationCoordinator::CommitLocked(Job* job) {
  VersionCatalog& catalog = owner_->catalog_;
  Database& db = owner_->db_;
  // Snapshot first so any failure restores the old world bit-for-bit. The
  // materialization bits flip — and the epoch bumps — only after every
  // fallible step succeeded, so a rolled-back commit leaves the plan cache
  // epoch exactly where it was.
  Database::SnapshotState snapshot = db.Snapshot();
  Status status = Status::OK();
  // Drop stale physical data tables.
  for (TvId tv : job->old_physical) {
    if (job->new_physical.count(tv)) continue;
    Status s = db.DropTable(catalog.DataTableName(tv));
    if (!s.ok()) status = s;
  }
  // Drop stale aux tables.
  for (SmoId id : job->flipping) {
    const SmoInstance& inst = catalog.smo(id);
    bool new_state = job->target_m.count(id) > 0;
    std::vector<std::string> keep = catalog.PhysicalAuxNames(id, new_state);
    for (const std::string& aux :
         catalog.PhysicalAuxNames(id, inst.materialized)) {
      bool kept = false;
      for (const std::string& k : keep) {
        if (k == aux) kept = true;
      }
      if (kept) continue;
      Status s = db.DropTable(catalog.AuxTableName(id, aux));
      if (!s.ok()) status = s;
    }
  }
  // Install the staged tables.
  if (status.ok()) {
    for (const auto& ep : job->entries) {
      Status s = db.CreateTable(ep->content.schema());
      if (!s.ok()) {
        status = s;
        break;
      }
      Result<Table*> table = db.GetTable(ep->physical_name);
      if (!table.ok()) {
        status = table.status();
        break;
      }
      **table = std::move(ep->content);
    }
  }
  if (!status.ok()) {
    db.Restore(std::move(snapshot));
    return status;
  }
  // Point of no return: flip the bits, bump the epoch, refresh caches.
  for (SmoId id : job->flipping) {
    catalog.mutable_smo(id).materialized = job->target_m.count(id) > 0;
  }
  if (!job->flipping.empty()) catalog.BumpMaterializationEpoch();
  owner_->access_.InvalidateForMigration(
      std::set<SmoId>(job->flipping.begin(), job->flipping.end()));
  // Dual-plan epoch window: while still exclusive, compile every live
  // version's plan under the new epoch so the first post-flip access of
  // each version hits a warm cache instead of paying a compile in its read
  // path. Best effort — a lazy compile would surface the same error.
  (void)owner_->access_.PrewarmPlans();
  return Status::OK();
}

Status MigrationCoordinator::DeriveKeysLocked(StagedEntry* e,
                                              const std::vector<int64_t>& keys,
                                              DerivedRows* out) {
  out->clear();
  out->reserve(keys.size());
  for (int64_t key : keys) {
    INVERDA_ASSIGN_OR_RETURN(std::optional<Row> row,
                             owner_->access_.FindVersion(e->tv, key));
    out->emplace_back(key, std::move(row));
  }
  return Status::OK();
}

Status MigrationCoordinator::DrainEntry(StagedEntry* e, bool final_drain,
                                        int64_t* work) {
  // Take the whole delta log in one move; keys rewritten while we derive
  // re-enter `pending` through capture and are redone next round (or by the
  // final drain, which runs under the exclusive lock with no writers left).
  std::vector<int64_t> batch;
  {
    std::lock_guard<std::mutex> lock(e->mu);
    batch.assign(e->pending.begin(), e->pending.end());
    e->pending.clear();
  }
  if (batch.empty()) return Status::OK();
  const int chunk =
      hooks_.chunk_keys > 0 ? hooks_.chunk_keys : kDefaultChunkKeys;
  for (size_t at = 0; at < batch.size(); at += static_cast<size_t>(chunk)) {
    size_t end = std::min(batch.size(), at + static_cast<size_t>(chunk));
    std::vector<int64_t> slice(batch.begin() + static_cast<int64_t>(at),
                               batch.begin() + static_cast<int64_t>(end));
    DerivedRows derived;
    if (final_drain) {
      // Caller holds the catalog lock exclusively already.
      INVERDA_RETURN_IF_ERROR(DeriveKeysLocked(e, slice, &derived));
    } else {
      std::shared_lock<std::shared_mutex> ddl(owner_->catalog_mu_);
      INVERDA_RETURN_IF_ERROR(DeriveKeysLocked(e, slice, &derived));
    }
    std::lock_guard<std::mutex> lock(e->mu);
    for (auto& [key, row] : derived) {
      if (!final_drain && e->pending.count(key) > 0) continue;
      if (row.has_value()) {
        INVERDA_RETURN_IF_ERROR(e->content.Upsert(key, std::move(*row)));
      } else {
        e->content.Erase(key);
      }
    }
  }
  *work += static_cast<int64_t>(batch.size());
  keys_drained_.fetch_add(static_cast<int64_t>(batch.size()),
                          std::memory_order_relaxed);
  mig_keys_drained_->Add(static_cast<int64_t>(batch.size()));
  return Status::OK();
}

Status MigrationCoordinator::RefreshEntry(StagedEntry* e, bool exclusive_held,
                                          int64_t* work) {
  uint64_t before = e->dirty.load(std::memory_order_acquire);
  if (e->refreshed_at == before &&
      e->refreshed_at != StagedEntry::kNeverRefreshed) {
    return Status::OK();  // still fresh
  }
  Table fresh(e->content.schema(), owner_->db_.shards());
  auto derive = [&]() -> Status {
    if (e->tv >= 0) {
      // Non-key-stable data table: re-derive the whole view through the
      // latched scan path.
      Status upserted = Status::OK();
      INVERDA_RETURN_IF_ERROR(owner_->access_.ScanVersion(
          e->tv, [&](int64_t key, const Row& row) {
            if (upserted.ok()) upserted = fresh.Upsert(key, row);
          }));
      return upserted;
    }
    const SmoInstance& inst = owner_->catalog_.smo(e->aux_smo);
    INVERDA_ASSIGN_OR_RETURN(SmoContext ctx,
                             owner_->access_.BuildContext(e->aux_smo));
    INVERDA_ASSIGN_OR_RETURN(const Kernel* kernel, KernelForSmo(*inst.smo));
    return kernel->DeriveAux(ctx, e->aux_short, &fresh);
  };
  if (exclusive_held) {
    INVERDA_RETURN_IF_ERROR(derive());
  } else if (e->tv >= 0) {
    // The latched scan path is safe under the shared lock.
    std::shared_lock<std::shared_mutex> ddl(owner_->catalog_mu_);
    INVERDA_RETURN_IF_ERROR(derive());
  } else {
    // Aux derivation reads aux tables outside the latch protocol, so it
    // needs a brief exclusive section (typically small tables).
    std::unique_lock<std::shared_mutex> ddl(owner_->catalog_mu_);
    INVERDA_RETURN_IF_ERROR(derive());
  }
  {
    std::lock_guard<std::mutex> lock(e->mu);
    e->content = std::move(fresh);
  }
  e->refreshed_at = before;
  *work += 1;
  refreshes_.fetch_add(1, std::memory_order_relaxed);
  mig_refreshes_->Add(1);
  return Status::OK();
}

void MigrationCoordinator::Finish(Status status) {
  bool aborted = !status.ok() && abort_.load(std::memory_order_acquire);
  // Quiesce capture: acquiring the catalog lock exclusively waits out every
  // in-flight writer (captures run under the shared lock), after which the
  // observer is detached and the staged state can be destroyed. On the
  // committed path the flip already detached it — this is idempotent.
  {
    std::unique_lock<std::shared_mutex> ddl(owner_->catalog_mu_);
    owner_->access_.set_write_observer(nullptr);
    job_.reset();
  }
  Phase terminal = status.ok() ? Phase::kDone
                   : aborted   ? Phase::kAborted
                               : Phase::kFailed;
  if (status.ok()) {
    mig_committed_->Add(1);
  } else if (aborted) {
    mig_aborted_->Add(1);
  } else {
    mig_failed_->Add(1);
  }
  phase_.store(static_cast<int>(terminal), std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    result_ = std::move(status);
    active_.store(false, std::memory_order_release);
  }
  cv_.notify_all();
}

}  // namespace migrate
}  // namespace inverda
