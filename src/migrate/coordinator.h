#ifndef INVERDA_MIGRATE_COORDINATOR_H_
#define INVERDA_MIGRATE_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "mapping/write_set.h"
#include "storage/table.h"
#include "util/status.h"

namespace inverda {

class Inverda;

namespace obs {
struct Observability;
class Counter;
class Histogram;
}  // namespace obs

namespace migrate {

/// Lifecycle of one background migration (docs/migration.md). kIdle only
/// before the first Start; every admitted migration ends in exactly one of
/// the three terminal phases.
enum class Phase {
  kIdle,     ///< no migration has run yet
  kCopy,     ///< chunked backfill of the staged tables under shared DDL
  kCatchUp,  ///< delta-log replay of concurrently captured keys
  kFlip,     ///< brief exclusive window: final drain, swap, epoch bump
  kDone,     ///< committed
  kAborted,  ///< unwound on request; live state untouched
  kFailed,   ///< unwound on error; live state untouched
};

const char* PhaseName(Phase phase);

/// Point-in-time progress snapshot of the coordinator (shell MIGRATIONS,
/// bidel_lint --migrations, the test battery).
struct MigrationStatus {
  int64_t id = 0;  ///< 0 until the first migration is admitted
  bool active = false;
  Phase phase = Phase::kIdle;
  std::string label;  ///< human-readable target description
  int64_t rows_copied = 0;
  int64_t chunks = 0;
  int64_t keys_captured = 0;
  int64_t keys_drained = 0;
  int64_t catchup_rounds = 0;
  int64_t refreshes = 0;
  int64_t flip_keys = 0;  ///< keys drained inside the exclusive flip window
  int64_t flip_ns = 0;    ///< duration of the exclusive flip window
  Status result;          ///< terminal status of the last finished migration
};

/// One-line rendering ("#3 done targets=TasKy2 copied=120 captured=14 ...").
std::string FormatMigrationStatus(const MigrationStatus& status);

/// Write-capture sink: installed on the access layer for the duration of a
/// migration and invoked at the top level of every write after the data
/// landed, while the writer still holds the shared catalog lock. The
/// implementation must only touch leaf state (nothing that can wait on a
/// table latch or the catalog lock).
class WriteObserver {
 public:
  virtual ~WriteObserver() = default;
  virtual void OnWrite(TvId tv, const WriteSet& writes) = 0;
};

/// Test-only fault-injection and pacing hooks (install before Start; never
/// used in production paths).
struct TestHooks {
  /// Called on entering each phase, outside all locks. Returning an error
  /// fails the migration at that boundary; the unwind must leave the
  /// engine exactly as before Start.
  std::function<Status(Phase)> on_phase;
  /// Called after each copied chunk / refresh, outside all locks — pacing
  /// for the under-traffic tests.
  std::function<void()> after_chunk;
  /// Called inside the exclusive flip window, after the final drain but
  /// before any physical table is touched.
  std::function<Status()> before_flip_commit;
  /// Keys per copy chunk; 0 keeps the default (512).
  int chunk_keys = 0;
};

/// Background, non-blocking MATERIALIZE (docs/migration.md): copies the
/// target physical tables chunk-by-chunk while readers and writers keep
/// running under the normal shared DDL lock, captures concurrent writes
/// through a key-scoped delta log fed by the access layer's write observer,
/// replays them in catch-up rounds, and commits with a brief exclusive
/// epoch flip. Abort or failure at any phase before the commit leaves the
/// live database bit-for-bit untouched (staging happens off to the side and
/// the materialization epoch never moves).
///
/// One migration runs at a time. The facade rejects all other DDL while a
/// migration is active, so the genealogy the coordinator captured at Start
/// stays structurally frozen until the terminal phase.
class MigrationCoordinator : public WriteObserver {
 public:
  MigrationCoordinator(Inverda* owner, obs::Observability* obs);
  ~MigrationCoordinator() override;

  MigrationCoordinator(const MigrationCoordinator&) = delete;
  MigrationCoordinator& operator=(const MigrationCoordinator&) = delete;

  /// Admits a background migration to the materialization implied by
  /// `targets` ("Version" or "Version.table", as MATERIALIZE). Returns once
  /// the migration is staged and the capture hook is live; the copy runs on
  /// a background thread. Rejects with InvalidState when one is active.
  Status Start(const std::vector<std::string>& targets);

  /// Start for an explicit materialization schema (by SMO instance ids).
  Status StartSchema(const std::set<SmoId>& m);

  /// Blocks until no migration is active and returns the terminal status
  /// of the last migration (OK when none ever ran). Must not be called
  /// while holding the facade's catalog lock.
  Status Wait();

  /// Requests abort of the active migration and waits for it to unwind.
  /// OK when the migration ended aborted (or raced to completion).
  Status Abort();

  bool active() const { return active_.load(std::memory_order_acquire); }

  /// Progress snapshot; safe to call concurrently with a running migration.
  MigrationStatus Snapshot() const;

  /// Installs fault-injection/pacing hooks. Only valid while idle.
  void set_test_hooks(TestHooks hooks);

  // WriteObserver: records the keys of a top-level write into the delta
  // log of every staged table in the write's genealogy component (or bumps
  // the dirty stamp of entries that re-derive wholesale). Called by the
  // access layer under the shared catalog lock.
  void OnWrite(TvId tv, const WriteSet& writes) override;

 private:
  /// One staged physical table: the content it will have after the flip,
  /// built off to the side while the old materialization keeps serving.
  struct StagedEntry {
    explicit StagedEntry(Table t) : content(std::move(t)) {}

    TvId tv = -1;        ///< staged data table's version; -1 for aux entries
    SmoId aux_smo = -1;  ///< aux entries: owning SMO instance
    std::string aux_short;      ///< aux entries: short name ("B", ...)
    std::string physical_name;  ///< target physical table name
    /// True when every SMO in the component maps a write with key set K to
    /// view changes at keys within K (everything except DECOMPOSE/JOIN with
    /// a non-PK method) — the precondition for key-scoped capture. Aux
    /// entries are always refreshed wholesale.
    bool key_stable = false;
    std::set<TvId> component;  ///< genealogy component, for capture routing
    Table content;
    /// Delta log: keys written concurrently and not yet re-derived into
    /// `content`. `mu` is a leaf lock in the global order — held only
    /// around set/content operations, never while acquiring anything else.
    std::mutex mu;
    std::set<int64_t> pending;
    /// Wholesale-refresh entries: captures bump `dirty`; a refresh records
    /// the stamp it derived from, so "dirty != refreshed_at" means stale.
    std::atomic<uint64_t> dirty{0};
    uint64_t refreshed_at = kNeverRefreshed;  // coordinator thread only
    static constexpr uint64_t kNeverRefreshed = ~uint64_t{0};
  };

  /// Everything one migration stages. Created and destroyed under the
  /// exclusive catalog lock; entry addresses are stable for the lifetime
  /// of the job (capture threads index into them).
  struct Job {
    int64_t id = 0;
    std::string label;
    std::set<SmoId> target_m;
    std::vector<SmoId> flipping;
    std::set<TvId> old_physical;
    std::set<TvId> new_physical;
    std::vector<std::unique_ptr<StagedEntry>> entries;
  };

  using DerivedRows = std::vector<std::pair<int64_t, std::optional<Row>>>;

  /// Stages the job and installs the capture hook. Requires start_mu_ and
  /// the facade's exclusive catalog lock; publishes a new migration id only
  /// once staging succeeded, so a rejected admission leaves the previous
  /// migration's snapshot intact.
  Status StartLocked(const std::set<SmoId>& m, std::string label);

  /// Rejects when active; joins the previous worker otherwise. Caller must
  /// hold start_mu_.
  Status Reap();

  /// Zeroes the per-migration progress counters. Runs at admission (both
  /// the real and the trivial no-op path) so Snapshot() never pairs a new
  /// migration id with the previous migration's counters.
  void ResetProgress();

  void Run();  // worker thread body
  Status RunPhases();
  Status EnterPhase(Phase phase);

  Status CopyPhase();
  Status CatchUpPhase();
  Status FlipPhase();

  /// The commit: drop stale tables, install staged content, flip the
  /// materialization bits, bump the epoch (last, so every failure path
  /// leaves the epoch — and with it the plan cache — exactly untouched)
  /// and prewarm the plan cache for the new epoch. Requires the exclusive
  /// catalog lock. All-or-nothing via a storage snapshot.
  Status CommitLocked(Job* job);

  /// Derives `keys` of `e->tv` through the normal latched point-read path.
  /// Requires the catalog lock (shared or exclusive).
  Status DeriveKeysLocked(StagedEntry* e, const std::vector<int64_t>& keys,
                          DerivedRows* out);

  /// Takes the whole delta log of `e` and re-derives it; keys rewritten
  /// mid-drain stay pending for the next round. `final_drain` (exclusive
  /// lock held, no writers) applies unconditionally and must leave the log
  /// empty. Adds the number of keys drained to `*work`.
  Status DrainEntry(StagedEntry* e, bool final_drain, int64_t* work);

  /// Wholesale re-derivation of a refresh-path entry (non-key-stable data
  /// table or aux table) when its dirty stamp moved. Data tables re-derive
  /// under the shared lock through the latched scan path; aux derivation
  /// reads aux state outside the latch protocol, so it runs under a brief
  /// exclusive section unless the caller already holds one.
  Status RefreshEntry(StagedEntry* e, bool exclusive_held, int64_t* work);

  Status AbortedStatus() const;
  void Finish(Status status);

  Inverda* owner_;
  obs::Observability* obs_;

  // Push metrics, cached at construction.
  obs::Counter* mig_started_;
  obs::Counter* mig_committed_;
  obs::Counter* mig_aborted_;
  obs::Counter* mig_failed_;
  obs::Counter* mig_rows_copied_;
  obs::Counter* mig_chunks_;
  obs::Counter* mig_keys_captured_;
  obs::Counter* mig_keys_drained_;
  obs::Counter* mig_refreshes_;
  obs::Histogram* mig_chunk_ns_;
  obs::Histogram* mig_flip_ns_;

  // Progress counters (atomic: capture threads and Snapshot() read/write
  // them while the worker runs).
  std::atomic<int64_t> rows_copied_{0};
  std::atomic<int64_t> chunks_{0};
  std::atomic<int64_t> keys_captured_{0};
  std::atomic<int64_t> keys_drained_{0};
  std::atomic<int64_t> catchup_rounds_{0};
  std::atomic<int64_t> refreshes_{0};
  std::atomic<int64_t> flip_keys_{0};
  std::atomic<int64_t> flip_ns_{0};

  std::atomic<bool> active_{false};
  std::atomic<bool> abort_{false};
  std::atomic<int> phase_{static_cast<int>(Phase::kIdle)};

  // The staged state. Written only under the facade's exclusive catalog
  // lock (Start installs, Finish tears down); capture threads read it under
  // the shared lock, so the pointer never races.
  std::unique_ptr<Job> job_;

  mutable std::mutex mu_;  // guards label_/result_/next_id_ and the cv
  std::condition_variable cv_;
  std::string label_;
  Status result_;
  int64_t last_id_ = 0;

  /// Serializes admission: held across Reap, StartLocked and the worker_
  /// spawn, so two concurrent Start/StartSchema calls can never both pass
  /// the active() check (the loser would overwrite job_ under the winner's
  /// live worker and assign to a still-joinable worker_). Acquired before
  /// catalog_mu_; never taken by the worker thread.
  std::mutex start_mu_;
  std::thread worker_;
  TestHooks hooks_;
};

}  // namespace migrate
}  // namespace inverda

#endif  // INVERDA_MIGRATE_COORDINATOR_H_
