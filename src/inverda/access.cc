#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "inverda/inverda.h"
#include "util/thread_pool.h"

namespace inverda {

thread_local int AccessLayer::access_depth_ = 0;
thread_local WriteTrace AccessLayer::last_trace_;

namespace {

// Decrements the access recursion depth on every exit path.
struct DepthGuard {
  int* depth;
  explicit DepthGuard(int* d) : depth(d) { ++*depth; }
  ~DepthGuard() { --*depth; }
};

// Copies the step metadata EXPLAIN prints into a derive/propagate span, so
// a trace is directly comparable to the compiled plan it executed.
void FillStepSpan(obs::TraceSpan* span, const plan::PlanStep& step) {
  span->smo = step.smo;
  span->route =
      step.route == plan::RouteCase::kForward ? "forward" : "backward";
  span->side = step.side == SmoSide::kSource ? "source" : "target";
  span->index = step.index;
  span->kernel = step.kernel->name();
  span->smo_text = step.smo_text;
  for (const auto& [aux, physical_name] : step.ctx.aux_names) {
    span->aux.emplace_back(aux, physical_name);
  }
  if (step.is_fused()) {
    span->fused = static_cast<int>(step.fused.size());
    for (const plan::PlanStep& sub : step.fused) {
      span->fused_hops.emplace_back(sub.kernel->name(), sub.smo_text);
    }
  }
}

// Write sets below this size apply sequentially even on a sharded table:
// the fan-out costs a pool wake-up, which a handful of hash-map writes
// never amortizes.
constexpr size_t kParallelApplyMinOps = 128;

Status ApplyOpToTable(Table* table, const WriteOp& op) {
  switch (op.kind) {
    case WriteOp::Kind::kInsert:
      return table->Insert(op.key, op.row);
    case WriteOp::Kind::kUpdate:
      return table->Update(op.key, op.row);
    case WriteOp::Kind::kDelete:
      table->Erase(op.key);
      return Status::OK();
  }
  return Status::OK();
}

}  // namespace

// --- observability wiring ---------------------------------------------------

AccessLayer::AccessLayer(VersionCatalog* catalog, Database* db,
                         obs::Observability* obs)
    : catalog_(catalog), db_(db), obs_(obs), compiler_(catalog, this) {
  obs::MetricsRegistry& m = obs_->metrics;
  // Push metrics: pointers cached once, bumped lock-free on the hot path.
  scan_ns_ = m.histogram("access.scan_ns");
  find_ns_ = m.histogram("access.find_ns");
  apply_ns_ = m.histogram("access.apply_ns");
  latch_ns_ = m.histogram("latch.acquire_ns");
  latch_fine_ = m.counter("latch.fine_grained");
  latch_escalations_ = m.counter("latch.escalations");
  latch_global_ = m.counter("latch.global");
  latch_key_scoped_ = m.counter("latch.key_scoped");
  parallel_scans_ = m.counter("storage.parallel_scans");
  parallel_applies_ = m.counter("storage.parallel_applies");
  // Pull sources: the plan/view caches already keep their own counters —
  // exporting them through callbacks keeps one source of truth, so the
  // registry can never drift from the components' own view.
  m.RegisterSource(
      "plan_cache",
      [this] {
        plan::PlanCacheStats s = plan_cache_.stats();
        return std::vector<obs::MetricValue>{
            {"plan_cache.hits", s.hits},
            {"plan_cache.compiles", s.compiles},
            {"plan_cache.invalidations", s.invalidations},
            {"plan_cache.route_walks", s.route_walks},
            {"plan_cache.context_builds", s.context_builds},
            {"plan_cache.size", plan_cache_.size()}};
      },
      [this] { plan_cache_.ResetStats(); });
  m.RegisterSource(
      "view_cache",
      [this] {
        return std::vector<obs::MetricValue>{
            {"view_cache.hits", cache_hits()},
            {"view_cache.misses", cache_misses()},
            {"view_cache.invalidations", cache_invalidations()},
            {"view_cache.size", cache_size()}};
      },
      [this] { ResetCacheStats(); });
  // The compiler's walk counters are monotonic by contract (the plan cache
  // diffs them around compiles), so this source has no reset hook.
  m.RegisterSource("plan_compiler", [this] {
    return std::vector<obs::MetricValue>{
        {"plan_compiler.route_walks", compiler_.route_walks()},
        {"plan_compiler.context_builds", compiler_.context_builds()}};
  });
  // Verify-gate rejections are monotonic too: a rejection means a fused
  // step failed translation validation and fell back to its unfused hops.
  m.RegisterSource("plan_verify", [this] {
    return std::vector<obs::MetricValue>{
        {"plan_verify.fusion_rejected", compiler_.fusion_rejections()}};
  });
  // Storage-shape source: the active shard count and the scan pool's
  // worker count, so METRICS shows the sharding configuration in effect.
  m.RegisterSource("storage", [this] {
    return std::vector<obs::MetricValue>{
        {"storage.shards", db_->shards()},
        {"storage.scan_threads", ScanPool().threads()}};
  });
  // Per-version access totals feed the advisor's workload profiler; a reset
  // via the registry opens a fresh observation window.
  m.RegisterSource(
      "access_profile",
      [this] {
        int64_t reads = 0, writes = 0;
        for (const TvAccessSlot& slot : tv_access_) {
          reads += slot.reads.load(std::memory_order_relaxed);
          writes += slot.writes.load(std::memory_order_relaxed);
        }
        return std::vector<obs::MetricValue>{{"profile.reads", reads},
                                             {"profile.writes", writes}};
      },
      [this] { ResetAccessProfile(); });
}

std::map<TvId, std::pair<int64_t, int64_t>> AccessLayer::AccessProfile() const {
  std::map<TvId, std::pair<int64_t, int64_t>> profile;
  for (int tv = 0; tv < kMaxProfiledTvs; ++tv) {
    const int64_t reads = tv_access_[tv].reads.load(std::memory_order_relaxed);
    const int64_t writes =
        tv_access_[tv].writes.load(std::memory_order_relaxed);
    if (reads != 0 || writes != 0) profile[tv] = {reads, writes};
  }
  return profile;
}

void AccessLayer::ResetAccessProfile() {
  for (TvAccessSlot& slot : tv_access_) {
    slot.reads.store(0, std::memory_order_relaxed);
    slot.writes.store(0, std::memory_order_relaxed);
  }
}

AccessLayer::KernelMetrics* AccessLayer::MetricsForKernel(
    const Kernel* kernel) {
  // Lock-free fast path: kernels are static singletons, so a handful of
  // pointer compares resolves every kernel after its first access.
  for (KernelSlot& slot : kernel_slots_) {
    const Kernel* cur = slot.kernel.load(std::memory_order_acquire);
    if (cur == kernel) return &slot.metrics;
    if (cur == nullptr) break;
  }
  std::lock_guard<std::mutex> lock(kernel_slots_mu_);
  for (KernelSlot& slot : kernel_slots_) {
    const Kernel* cur = slot.kernel.load(std::memory_order_relaxed);
    if (cur == kernel) return &slot.metrics;
    if (cur != nullptr) continue;
    const std::string base = std::string("kernel.") + kernel->name();
    slot.metrics.derive_ns = obs_->metrics.histogram(base + ".derive_ns");
    slot.metrics.propagate_ns = obs_->metrics.histogram(base + ".propagate_ns");
    slot.metrics.derive_rows = obs_->metrics.counter(base + ".derive_rows");
    // Publish last: readers that see the kernel pointer see wired metrics.
    slot.kernel.store(kernel, std::memory_order_release);
    return &slot.metrics;
  }
  return nullptr;  // more than kMaxKernels distinct kernels: unmetered
}

// --- compiled plans ---------------------------------------------------------

Result<SmoContext> AccessLayer::BuildContext(SmoId id) {
  return compiler_.BuildContext(id);
}

Result<const plan::TvPlan*> AccessLayer::GetPlan(TvId tv) {
  return plan_cache_.Get(tv, catalog_->materialization_epoch(), compiler_);
}

Result<AccessLayer::PlanHandle> AccessLayer::ResolvePlan(TvId tv) {
  PlanHandle handle;
  if (plan_cache_enabled_) {
    INVERDA_ASSIGN_OR_RETURN(handle.cached, GetPlan(tv));
    return handle;
  }
  // Legacy-resolution mode: re-resolve the first hop from the catalog on
  // every access, like the pre-plan executor did. The plan lives on this
  // call's stack because kernels re-enter the AccessLayer recursively.
  INVERDA_ASSIGN_OR_RETURN(plan::TvPlan shallow, compiler_.CompileShallow(tv));
  handle.owned = std::make_unique<plan::TvPlan>(std::move(shallow));
  return handle;
}

Status AccessLayer::PrewarmPlans() {
  // Compile every table version's plan at the current epoch. Called inside
  // the migration flip window (exclusive catalog lock held) right after the
  // epoch bump, so the first post-flip access of every version hits a warm
  // cache instead of paying compilation inside its own critical path — the
  // "dual-plan epoch window" collapses to the flip itself.
  if (!plan_cache_enabled_) return Status::OK();
  for (TvId tv : catalog_->AllTableVersions()) {
    INVERDA_RETURN_IF_ERROR(GetPlan(tv).status());
  }
  return Status::OK();
}

Result<int> AccessLayer::PropagationDistance(TvId tv) {
  if (plan_cache_enabled_) {
    INVERDA_ASSIGN_OR_RETURN(const plan::TvPlan* p, GetPlan(tv));
    return p->distance();
  }
  INVERDA_ASSIGN_OR_RETURN(plan::TvPlan full, compiler_.Compile(tv));
  return full.distance();
}

// --- latching ---------------------------------------------------------------

void AccessLayer::AcquireLatches(TableLatchSet* latches, const plan::TvPlan& p,
                                 bool write, bool timed) {
  // Kernel recursion (and migration staging inside the DDL-exclusive
  // facade section) runs under the top-level latch set; re-acquiring here
  // would self-deadlock on exclusive latches.
  if (access_depth_ > 0) return;
  // Latch instrumentation sits on every operation, so it records only
  // under the detailed-timing gate (`timed` is the caller's single
  // hot-flags load, see Observability::hot()).
  obs::ScopedTimer timer(timed ? latch_ns_ : nullptr);
  const bool exclusive = write || p.derive_mutates;
  if (!p.full) {
    // Shallow plans (plan cache disabled) carry no footprint: fall back to
    // the exclusive whole-database latch — the legacy-resolution
    // concurrency model.
    if (timed) [[unlikely]] latch_global_->Add(1);
    latches->AcquireGlobal(&db_->latches());
    return;
  }
  // The footprint lists every physical table any access path of the
  // version can touch, so it covers both the derivation closure of reads
  // and the sibling derivations of a write's propagation chain.
  latches->Acquire(&db_->latches(), p.footprint, exclusive);
  if (timed) [[unlikely]] {
    // Accounted after the fact: with shards, escalation can also trigger
    // on the total latch budget, which only Acquire itself knows.
    if (latches->escalated()) {
      latch_escalations_->Add(1);
    } else {
      latch_fine_->Add(1);
    }
  }
}

bool AccessLayer::KeyScopedEligible(const plan::TvPlan& p) const {
  // Physical single-table plans only: the footprint must be exactly the
  // data table, otherwise shard-scoping would leave other tables unlatched.
  return access_depth_ == 0 && p.full && p.physical &&
         p.footprint.size() == 1 && p.footprint.front() == p.data_table &&
         db_->latches().shards() > 1;
}

void AccessLayer::AcquireLatchesForKeys(TableLatchSet* latches,
                                        const plan::TvPlan& p,
                                        const std::vector<int64_t>& keys,
                                        bool write, bool timed) {
  if (!KeyScopedEligible(p)) {
    AcquireLatches(latches, p, write, timed);
    return;
  }
  obs::ScopedTimer timer(timed ? latch_ns_ : nullptr);
  latches->AcquireKeyScoped(&db_->latches(), p.data_table, keys,
                            write || p.derive_mutates);
  if (timed) [[unlikely]] latch_key_scoped_->Add(1);
}

// --- derived-view cache -----------------------------------------------------

Result<AccessLayer::DepVec> AccessLayer::FootprintDeps(const plan::TvPlan& p) {
  const std::vector<std::string>* names = &p.footprint;
  plan::TvPlan full;
  if (!p.full) {
    INVERDA_ASSIGN_OR_RETURN(full, compiler_.Compile(p.tv));
    names = &full.footprint;
  }
  DepVec deps;
  deps.reserve(names->size());
  for (const std::string& name : *names) {
    deps.emplace_back(name, db_->TableEpoch(name).value_or(0));
  }
  return deps;
}

std::shared_ptr<const Table> AccessLayer::LookupCache(TvId tv) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(tv);
  if (it == cache_.end()) {
    RecordCacheLookupLocked(tv, /*hit=*/false);
    return nullptr;
  }
  for (const auto& [name, epoch] : it->second.deps) {
    std::optional<uint64_t> current = db_->TableEpoch(name);
    if (!current || *current != epoch) {
      EraseCacheEntryLocked(tv);
      RecordCacheLookupLocked(tv, /*hit=*/false);
      return nullptr;
    }
  }
  RecordCacheLookupLocked(tv, /*hit=*/true);
  return it->second.table;
}

Status AccessLayer::StoreCache(const plan::TvPlan& p, Table table) {
  // Fingerprint before locking: FootprintDeps may compile (catalog walk),
  // which must not run under cache_mu_.
  INVERDA_ASSIGN_OR_RETURN(DepVec deps, FootprintDeps(p));
  auto view = std::make_shared<const Table>(std::move(table));
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_.insert_or_assign(p.tv, CacheEntry{std::move(view), std::move(deps)});
  return Status::OK();
}

void AccessLayer::RecordCacheLookupLocked(TvId tv, bool hit) {
  // The single accounting point for view-cache lookups: ScanVersion and
  // FindVersion used to bump the miss counters through duplicated code
  // paths; routing both through LookupCache keeps the aggregate and
  // per-version counters moving together on every path.
  if (hit) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    ++cache_stats_[tv].hits;
  } else {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    ++cache_stats_[tv].misses;
  }
}

void AccessLayer::EraseCacheEntryLocked(TvId tv) {
  if (cache_.erase(tv) == 0) return;
  cache_invalidations_.fetch_add(1, std::memory_order_relaxed);
  ++cache_stats_[tv].invalidations;
}

void AccessLayer::EraseCacheEntry(TvId tv) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  EraseCacheEntryLocked(tv);
}

void AccessLayer::InvalidateCache() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  for (const auto& [tv, entry] : cache_) {
    (void)entry;
    cache_invalidations_.fetch_add(1, std::memory_order_relaxed);
    ++cache_stats_[tv].invalidations;
  }
  cache_.clear();
}

void AccessLayer::ResetCacheStats() {
  cache_hits_.store(0, std::memory_order_relaxed);
  cache_misses_.store(0, std::memory_order_relaxed);
  cache_invalidations_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_stats_.clear();
}

Status AccessLayer::InvalidateForWrite(const plan::TvPlan& p) {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (cache_.empty()) return Status::OK();
  }
  INVERDA_ASSIGN_OR_RETURN(DepVec footprint_deps, FootprintDeps(p));
  std::set<std::string> footprint;
  for (const auto& [name, epoch] : footprint_deps) {
    (void)epoch;
    footprint.insert(name);
  }
  const std::set<TvId>& component = catalog_->ComponentOf(p.tv);
  std::lock_guard<std::mutex> lock(cache_mu_);
  std::vector<TvId> doomed;
  for (const auto& [cached_tv, entry] : cache_) {
    if (!component.count(cached_tv)) continue;  // disjoint lineage
    if (cached_tv == p.tv) {
      doomed.push_back(cached_tv);
      continue;
    }
    for (const auto& [name, epoch] : entry.deps) {
      (void)epoch;
      if (footprint.count(name)) {
        doomed.push_back(cached_tv);
        break;
      }
    }
  }
  for (TvId dead : doomed) EraseCacheEntryLocked(dead);
  return Status::OK();
}

void AccessLayer::InvalidateForMigration(const std::set<SmoId>& flipped) {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (cache_.empty()) return;
  }
  if (cache_mode_ == CacheMode::kClearAll) {
    InvalidateCache();
    return;
  }
  std::set<TvId> affected = catalog_->AffectedBySmos(flipped);
  std::lock_guard<std::mutex> lock(cache_mu_);
  std::vector<TvId> doomed;
  for (const auto& [tv, entry] : cache_) {
    (void)entry;
    if (affected.count(tv)) doomed.push_back(tv);
  }
  for (TvId dead : doomed) EraseCacheEntryLocked(dead);
}

// --- reads ------------------------------------------------------------------

Status AccessLayer::ScanVersion(TvId tv, const RowCallback& fn) {
  CountAccess(tv, /*write=*/false);
  // Latency lands in the histogram only at the top level of an access
  // chain; nested (kernel-recursive) scans are part of the enclosing op.
  // Timers and per-kernel metrics record only under the detailed-timing
  // gate — two clock reads per measurement are unaffordable on a
  // sub-microsecond point get — and both gates arrive in one packed
  // relaxed load (see Observability::hot()).
  const uint32_t hot = obs_->hot();
  const bool timed = (hot & obs::Observability::kTimingBit) != 0;
  obs::Tracer* tracer =
      (hot & obs::Observability::kTracingBit) != 0 ? &obs_->tracer : nullptr;
  obs::ScopedTimer op_timer(timed && access_depth_ == 0 ? scan_ns_ : nullptr);
  obs::SpanGuard span(tracer, "scan");
  INVERDA_ASSIGN_OR_RETURN(PlanHandle handle, ResolvePlan(tv));
  const plan::TvPlan& p = *handle.get();
  if (span) [[unlikely]] span->label = p.label;
  TableLatchSet latches;
  AcquireLatches(&latches, p, /*write=*/false, timed);
  DepthGuard guard(&access_depth_);
  if (p.physical) {
    INVERDA_ASSIGN_OR_RETURN(const Table* table,
                             db_->GetTableConst(p.data_table));
    if (span) [[unlikely]] {
      span->route = "physical";
      span->note = "data table " + p.data_table;
      if (table->shard_count() > 1) {
        span->note += " [" + std::to_string(table->shard_count()) + " shards]";
      }
      span->rows_out = table->size();
    }
    table->Scan(fn);
    return Status::OK();
  }
  if (cache_enabled_) {
    if (std::shared_ptr<const Table> cached = LookupCache(tv)) {
      if (span) [[unlikely]] {
        span->note = "view-cache hit";
        span->rows_out = cached->size();
      }
      cached->Scan(fn);
      return Status::OK();
    }
  }
  if (batch_enabled_ && !cache_enabled_) {
    // Columnar derivation: the chain below runs through the kernels' batch
    // entry points and the result streams straight to the caller — no
    // intermediate row-major table. (The view-cache path keeps the table
    // form because that is what it memoizes.)
    RowBatch batch;
    const plan::PlanStep& step = p.steps.front();
    if (hot == 0) [[likely]] {
      INVERDA_RETURN_IF_ERROR(step.DeriveBatch(&batch));
    } else {
      obs::SpanGuard step_span(tracer, "derive");
      if (step_span) FillStepSpan(step_span.get(), step);
      KernelMetrics* km = nullptr;
      if (timed) km = MetricsForKernel(step.kernel);
      obs::ScopedTimer kernel_timer(km != nullptr ? km->derive_ns : nullptr);
      INVERDA_RETURN_IF_ERROR(step.DeriveBatch(&batch));
      if (km != nullptr) km->derive_rows->Add(batch.selected_count());
      if (step_span) step_span->rows_out = batch.selected_count();
    }
    if (span) [[unlikely]] span->rows_out = batch.selected_count();
    batch.ForEach(fn);
    return Status::OK();
  }
  Table tmp(*p.schema);
  {
    const plan::PlanStep& step = p.steps.front();
    if (hot == 0) [[likely]] {
      // Fast path: no guard objects at all when every gate is off —
      // nested kernel recursion multiplies this block's entry cost.
      INVERDA_RETURN_IF_ERROR(step.Derive(std::nullopt, &tmp));
    } else {
      obs::SpanGuard step_span(tracer, "derive");
      if (step_span) FillStepSpan(step_span.get(), step);
      KernelMetrics* km = nullptr;
      if (timed) km = MetricsForKernel(step.kernel);
      obs::ScopedTimer kernel_timer(km != nullptr ? km->derive_ns : nullptr);
      INVERDA_RETURN_IF_ERROR(step.Derive(std::nullopt, &tmp));
      if (km != nullptr) km->derive_rows->Add(tmp.size());
      if (step_span) step_span->rows_out = tmp.size();
    }
  }
  if (span) [[unlikely]] span->rows_out = tmp.size();
  tmp.Scan(fn);
  if (cache_enabled_) {
    INVERDA_RETURN_IF_ERROR(StoreCache(p, std::move(tmp)));
  }
  return Status::OK();
}

Status AccessLayer::ScanVersionBatch(TvId tv, RowBatch* out) {
  // The columnar counterpart of ScanVersion: physical versions fill the
  // batch straight from the data table, virtual ones derive through the
  // kernels' batch entry points (PlanStep::DeriveBatch). Kernel recursion
  // re-enters here, so a batch scan stays columnar down the whole chain.
  // With batching disabled, the base-class bridge collects rows through
  // the ordinary ScanVersion — the row-at-a-time baseline.
  if (!batch_enabled_) return AccessBackend::ScanVersionBatch(tv, out);
  CountAccess(tv, /*write=*/false);
  const uint32_t hot = obs_->hot();
  const bool timed = (hot & obs::Observability::kTimingBit) != 0;
  obs::Tracer* tracer =
      (hot & obs::Observability::kTracingBit) != 0 ? &obs_->tracer : nullptr;
  obs::ScopedTimer op_timer(timed && access_depth_ == 0 ? scan_ns_ : nullptr);
  obs::SpanGuard span(tracer, "scan");
  INVERDA_ASSIGN_OR_RETURN(PlanHandle handle, ResolvePlan(tv));
  const plan::TvPlan& p = *handle.get();
  if (span) [[unlikely]] span->label = p.label;
  TableLatchSet latches;
  AcquireLatches(&latches, p, /*write=*/false, timed);
  DepthGuard guard(&access_depth_);
  if (p.physical) {
    INVERDA_ASSIGN_OR_RETURN(const Table* table,
                             db_->GetTableConst(p.data_table));
    const bool parallel = ParallelScanEligible(*table) && !out->has_selection();
    if (parallel) parallel_scans_->Add(1);
    if (span) [[unlikely]] {
      span->route = "physical";
      span->note = "data table " + p.data_table;
      if (table->shard_count() > 1) {
        span->note += parallel
                          ? " [" + std::to_string(table->shard_count()) +
                                " shards, parallel]"
                          : " [" + std::to_string(table->shard_count()) +
                                " shards]";
      }
      span->rows_out = table->size();
    }
    return BatchFromTable(*table, out);
  }
  if (cache_enabled_) {
    if (std::shared_ptr<const Table> cached = LookupCache(tv)) {
      if (span) [[unlikely]] {
        span->note = "view-cache hit";
        span->rows_out = cached->size();
      }
      return BatchFromTable(*cached, out);
    }
  }
  const plan::PlanStep& step = p.steps.front();
  if (hot == 0) [[likely]] {
    return step.DeriveBatch(out);
  }
  obs::SpanGuard step_span(tracer, "derive");
  if (step_span) FillStepSpan(step_span.get(), step);
  KernelMetrics* km = nullptr;
  if (timed) km = MetricsForKernel(step.kernel);
  obs::ScopedTimer kernel_timer(km != nullptr ? km->derive_ns : nullptr);
  INVERDA_RETURN_IF_ERROR(step.DeriveBatch(out));
  if (km != nullptr) km->derive_rows->Add(out->selected_count());
  if (step_span) step_span->rows_out = out->selected_count();
  if (span) [[unlikely]] span->rows_out = out->selected_count();
  return Status::OK();
}

Result<std::optional<Row>> AccessLayer::FindVersion(TvId tv, int64_t key) {
  CountAccess(tv, /*write=*/false);
  const uint32_t hot = obs_->hot();
  const bool timed = (hot & obs::Observability::kTimingBit) != 0;
  obs::Tracer* tracer =
      (hot & obs::Observability::kTracingBit) != 0 ? &obs_->tracer : nullptr;
  obs::ScopedTimer op_timer(timed && access_depth_ == 0 ? find_ns_ : nullptr);
  obs::SpanGuard span(tracer, "find");
  INVERDA_ASSIGN_OR_RETURN(PlanHandle handle, ResolvePlan(tv));
  const plan::TvPlan& p = *handle.get();
  if (span) [[unlikely]] span->label = p.label;
  TableLatchSet latches;
  if (KeyScopedEligible(p)) [[unlikely]] {
    // Point lookup on a sharded physical table: latch only the shard the
    // key routes to, so lookups and key-scoped writes on other shards of
    // the same table proceed in parallel.
    AcquireLatchesForKeys(&latches, p, std::vector<int64_t>{key},
                          /*write=*/false, timed);
  } else {
    AcquireLatches(&latches, p, /*write=*/false, timed);
  }
  DepthGuard guard(&access_depth_);
  if (p.physical) {
    INVERDA_ASSIGN_OR_RETURN(const Table* table,
                             db_->GetTableConst(p.data_table));
    if (span) [[unlikely]] {
      span->route = "physical";
      span->note = "data table " + p.data_table;
      if (table->shard_count() > 1) {
        span->note +=
            " [shard " + std::to_string(table->ShardOfKey(key)) + "/" +
            std::to_string(table->shard_count()) + "]";
      }
    }
    const Row* row = table->Find(key);
    if (row == nullptr) return std::optional<Row>();
    if (span) [[unlikely]] span->rows_out = 1;
    return std::optional<Row>(*row);
  }
  if (cache_enabled_) {
    if (std::shared_ptr<const Table> cached = LookupCache(tv)) {
      if (span) [[unlikely]] span->note = "view-cache hit";
      const Row* row = cached->Find(key);
      if (row == nullptr) return std::optional<Row>();
      if (span) [[unlikely]] span->rows_out = 1;
      return std::optional<Row>(*row);
    }
    // Same accounting as ScanVersion's miss path: derive the full view
    // once, store it, and answer this (and subsequent) lookups from it.
    Table tmp(*p.schema);
    {
      const plan::PlanStep& step = p.steps.front();
      if (hot == 0) [[likely]] {
        INVERDA_RETURN_IF_ERROR(step.Derive(std::nullopt, &tmp));
      } else {
        obs::SpanGuard step_span(tracer, "derive");
        if (step_span) FillStepSpan(step_span.get(), step);
        KernelMetrics* km = nullptr;
        if (timed) km = MetricsForKernel(step.kernel);
        obs::ScopedTimer kernel_timer(km != nullptr ? km->derive_ns : nullptr);
        INVERDA_RETURN_IF_ERROR(step.Derive(std::nullopt, &tmp));
        if (km != nullptr) km->derive_rows->Add(tmp.size());
        if (step_span) step_span->rows_out = tmp.size();
      }
    }
    std::optional<Row> found;
    if (const Row* row = tmp.Find(key)) found = *row;
    if (span) [[unlikely]] span->rows_out = found.has_value() ? 1 : 0;
    INVERDA_RETURN_IF_ERROR(StoreCache(p, std::move(tmp)));
    return found;
  }
  Table tmp(*p.schema);
  {
    const plan::PlanStep& step = p.steps.front();
    if (hot == 0) [[likely]] {
      INVERDA_RETURN_IF_ERROR(step.Derive(key, &tmp));
    } else {
      obs::SpanGuard step_span(tracer, "derive");
      if (step_span) FillStepSpan(step_span.get(), step);
      KernelMetrics* km = nullptr;
      if (timed) km = MetricsForKernel(step.kernel);
      obs::ScopedTimer kernel_timer(km != nullptr ? km->derive_ns : nullptr);
      INVERDA_RETURN_IF_ERROR(step.Derive(key, &tmp));
      if (km != nullptr) km->derive_rows->Add(tmp.size());
      if (step_span) step_span->rows_out = tmp.size();
    }
  }
  const Row* row = tmp.Find(key);
  if (row == nullptr) return std::optional<Row>();
  if (span) [[unlikely]] span->rows_out = 1;
  return std::optional<Row>(*row);
}

// --- writes -----------------------------------------------------------------

Status AccessLayer::ApplyToVersion(TvId tv, const WriteSet& writes) {
  if (!writes.empty()) CountAccess(tv, /*write=*/true);
  const bool top_level = access_depth_ == 0;
  Status status = ApplyToVersionImpl(tv, writes);
  if (top_level) {
    // Online-migration capture: notify after the data landed (all latches
    // released) but while the writer still holds its shared catalog lock,
    // so the coordinator's final exclusive drain can never miss a capture.
    // Notified even on failure — a partially applied write set may have
    // propagated some ops, and re-deriving a clean key is harmless.
    migrate::WriteObserver* observer =
        write_observer_.load(std::memory_order_acquire);
    if (observer != nullptr && !writes.empty()) [[unlikely]] {
      observer->OnWrite(tv, writes);
    }
  }
  return status;
}

Status AccessLayer::ApplyToVersionImpl(TvId tv, const WriteSet& writes) {
  if (writes.empty()) return Status::OK();
  const bool top_level = access_depth_ == 0;
  const uint32_t hot = obs_->hot();
  const bool timed = (hot & obs::Observability::kTimingBit) != 0;
  obs::Tracer* tracer =
      (hot & obs::Observability::kTracingBit) != 0 ? &obs_->tracer : nullptr;
  obs::ScopedTimer op_timer(timed && top_level ? apply_ns_ : nullptr);
  obs::SpanGuard span(tracer, "apply");
  if (span) [[unlikely]] span->rows_in = static_cast<int64_t>(writes.ops.size());
  INVERDA_ASSIGN_OR_RETURN(PlanHandle handle, ResolvePlan(tv));
  const plan::TvPlan& p = *handle.get();
  if (span) [[unlikely]] span->label = p.label;
  TableLatchSet latches;
  if (KeyScopedEligible(p)) [[unlikely]] {
    // Direct write to a sharded physical table: latch only the shards the
    // write set routes to (exclusive), so batches landing on different
    // shards of the same table run in parallel.
    std::vector<int64_t> keys;
    keys.reserve(writes.ops.size());
    for (const WriteOp& op : writes.ops) keys.push_back(op.key);
    AcquireLatchesForKeys(&latches, p, keys, /*write=*/true, timed);
  } else {
    AcquireLatches(&latches, p, /*write=*/true, timed);
  }
  DepthGuard guard(&access_depth_);
  if (top_level) {
    last_trace_.Clear();
    // Invalidate before the write lands: entries (re)stored by reads that
    // happen mid-propagation capture the post-write epochs and stay valid.
    if (cache_enabled_) {
      switch (cache_mode_) {
        case CacheMode::kClearAll:
          InvalidateCache();
          break;
        case CacheMode::kGenealogy:
          INVERDA_RETURN_IF_ERROR(InvalidateForWrite(p));
          break;
      }
    }
  }
  last_trace_.AddVersion(tv);
  if (p.physical) {
    last_trace_.AddTable(p.data_table);
    INVERDA_ASSIGN_OR_RETURN(Table * table, db_->GetTable(p.data_table));
    if (span) [[unlikely]] {
      span->route = "physical";
      span->note = "data table " + p.data_table;
      if (table->shard_count() > 1) {
        span->note +=
            " [" + std::to_string(table->shard_count()) + " shards]";
      }
      span->rows_out = static_cast<int64_t>(writes.ops.size());
    }
    const int shards = table->shard_count();
    if (shards > 1 && ScanPool().threads() > 0 &&
        writes.ops.size() >= kParallelApplyMinOps) {
      // Group op indices by destination shard. Each group applies in op
      // order on its own shard map (disjoint by construction; size and
      // epoch stamps are atomic), so groups run in parallel.
      std::vector<std::vector<size_t>> by_shard(
          static_cast<size_t>(shards));
      for (size_t i = 0; i < writes.ops.size(); ++i) {
        by_shard[static_cast<size_t>(table->ShardOfKey(writes.ops[i].key))]
            .push_back(i);
      }
      int busy = 0;
      for (const auto& group : by_shard) busy += group.empty() ? 0 : 1;
      if (busy > 1) {
        parallel_applies_->Add(1);
        // Each worker records its shard's first failure; the op-order
        // earliest one is reported, like the sequential loop would. (On
        // failure other shards may have applied ops past the failing
        // index — the sequential path stops instead; both leave a
        // partially applied set, which the caller already treats as an
        // operation failure.)
        struct ShardFailure {
          size_t op_index = SIZE_MAX;
          Status status;
        };
        std::vector<ShardFailure> failures(static_cast<size_t>(shards));
        ScanPool().ParallelFor(shards, [&](int64_t s) {
          for (size_t i : by_shard[static_cast<size_t>(s)]) {
            Status status = ApplyOpToTable(table, writes.ops[i]);
            if (!status.ok()) {
              failures[static_cast<size_t>(s)] = {i, std::move(status)};
              return;
            }
          }
        });
        const ShardFailure* first = nullptr;
        for (const ShardFailure& failure : failures) {
          if (failure.op_index == SIZE_MAX) continue;
          if (first == nullptr || failure.op_index < first->op_index) {
            first = &failure;
          }
        }
        if (first != nullptr) return first->status;
        return Status::OK();
      }
    }
    for (const WriteOp& op : writes.ops) {
      INVERDA_RETURN_IF_ERROR(ApplyOpToTable(table, op));
    }
    return Status::OK();
  }
  const plan::PlanStep& step = p.steps.front();
  for (const auto& [aux, physical_name] : step.ctx.aux_names) {
    (void)aux;
    last_trace_.AddTable(physical_name);
  }
  if (step.is_fused()) {
    // A fused step flattens the run's recursion, so the in-run versions and
    // aux tables the per-hop propagation traverses are recorded here (the
    // chain below the fusion boundary traces itself as usual).
    for (size_t i = 0; i < step.fused.size(); ++i) {
      const plan::PlanStep& sub = step.fused[i];
      if (i + 1 < step.fused.size()) last_trace_.AddVersion(sub.next);
      for (const auto& [aux, physical_name] : sub.ctx.aux_names) {
        (void)aux;
        last_trace_.AddTable(physical_name);
      }
    }
  }
  if (hot == 0) [[likely]] return step.Propagate(writes);
  obs::SpanGuard step_span(tracer, "propagate");
  if (step_span) {
    FillStepSpan(step_span.get(), step);
    step_span->rows_in = static_cast<int64_t>(writes.ops.size());
  }
  KernelMetrics* km = nullptr;
  if (timed) km = MetricsForKernel(step.kernel);
  obs::ScopedTimer kernel_timer(km != nullptr ? km->propagate_ns : nullptr);
  return step.Propagate(writes);
}

}  // namespace inverda
