#include "inverda/inverda.h"

namespace inverda {

Result<std::optional<AccessLayer::Route>> AccessLayer::ResolveRoute(TvId tv) {
  if (catalog_->IsPhysical(tv)) return std::optional<Route>();
  const TableVersion& info = catalog_->table_version(tv);
  // Case 2 (forwards): one outgoing SMO is materialized; the data is on its
  // target side, so tv is accessed as a source of that SMO.
  for (SmoId out : info.outgoing) {
    const SmoInstance& inst = catalog_->smo(out);
    if (inst.smo->kind() == SmoKind::kDropTable) continue;
    if (!inst.materialized) continue;
    Route route;
    route.smo = out;
    route.side = SmoSide::kSource;
    for (size_t i = 0; i < inst.sources.size(); ++i) {
      if (inst.sources[i] == tv) route.index = static_cast<int>(i);
    }
    return std::optional<Route>(route);
  }
  // Case 3 (backwards): the incoming SMO is virtualized; the data is on its
  // source side, so tv is accessed as a target of that SMO.
  const SmoInstance& in = catalog_->smo(info.incoming);
  if (in.smo->kind() == SmoKind::kCreateTable) {
    return Status::Internal("table version " + catalog_->TvLabel(tv) +
                            " has no data route");
  }
  Route route;
  route.smo = info.incoming;
  route.side = SmoSide::kTarget;
  for (size_t i = 0; i < in.targets.size(); ++i) {
    if (in.targets[i] == tv) route.index = static_cast<int>(i);
  }
  return std::optional<Route>(route);
}

Result<SmoContext> AccessLayer::BuildContext(SmoId id) {
  const SmoInstance& inst = catalog_->smo(id);
  SmoContext ctx;
  ctx.smo = inst.smo.get();
  ctx.materialized = inst.materialized;
  ctx.backend = this;
  ctx.memo = inst.memo.get();
  for (TvId src : inst.sources) {
    const TableVersion& tv = catalog_->table_version(src);
    ctx.sources.push_back(TvRef{src, &tv.schema});
  }
  for (TvId tgt : inst.targets) {
    const TableVersion& tv = catalog_->table_version(tgt);
    ctx.targets.push_back(TvRef{tgt, &tv.schema});
  }
  for (const std::string& aux :
       catalog_->PhysicalAuxNames(id, inst.materialized)) {
    ctx.aux_names[aux] = catalog_->AuxTableName(id, aux);
  }
  return ctx;
}

Status AccessLayer::ScanVersion(TvId tv, const RowCallback& fn) {
  INVERDA_ASSIGN_OR_RETURN(std::optional<Route> route, ResolveRoute(tv));
  if (!route) {
    INVERDA_ASSIGN_OR_RETURN(const Table* table,
                             db_->GetTableConst(catalog_->DataTableName(tv)));
    table->Scan(fn);
    return Status::OK();
  }
  if (cache_enabled_) {
    auto it = cache_.find(tv);
    if (it != cache_.end()) {
      ++cache_hits_;
      it->second.Scan(fn);
      return Status::OK();
    }
  }
  INVERDA_ASSIGN_OR_RETURN(SmoContext ctx, BuildContext(route->smo));
  INVERDA_ASSIGN_OR_RETURN(const Kernel* kernel, KernelForSmo(*ctx.smo));
  Table tmp(catalog_->table_version(tv).schema);
  INVERDA_RETURN_IF_ERROR(
      kernel->Derive(ctx, route->side, route->index, std::nullopt, &tmp));
  tmp.Scan(fn);
  if (cache_enabled_) {
    ++cache_misses_;
    cache_.emplace(tv, std::move(tmp));
  }
  return Status::OK();
}

Result<std::optional<Row>> AccessLayer::FindVersion(TvId tv, int64_t key) {
  if (cache_enabled_) {
    auto it = cache_.find(tv);
    if (it != cache_.end()) {
      ++cache_hits_;
      const Row* row = it->second.Find(key);
      if (row == nullptr) return std::optional<Row>();
      return std::optional<Row>(*row);
    }
  }
  INVERDA_ASSIGN_OR_RETURN(std::optional<Route> route, ResolveRoute(tv));
  if (!route) {
    INVERDA_ASSIGN_OR_RETURN(const Table* table,
                             db_->GetTableConst(catalog_->DataTableName(tv)));
    const Row* row = table->Find(key);
    if (row == nullptr) return std::optional<Row>();
    return std::optional<Row>(*row);
  }
  INVERDA_ASSIGN_OR_RETURN(SmoContext ctx, BuildContext(route->smo));
  INVERDA_ASSIGN_OR_RETURN(const Kernel* kernel, KernelForSmo(*ctx.smo));
  Table tmp(catalog_->table_version(tv).schema);
  INVERDA_RETURN_IF_ERROR(
      kernel->Derive(ctx, route->side, route->index, key, &tmp));
  const Row* row = tmp.Find(key);
  if (row == nullptr) return std::optional<Row>();
  return std::optional<Row>(*row);
}

Status AccessLayer::ApplyToVersion(TvId tv, const WriteSet& writes) {
  if (writes.empty()) return Status::OK();
  // Any write may affect any derived view along the genealogy; drop the
  // memoized scans (coarse but safe invalidation).
  if (cache_enabled_) InvalidateCache();
  INVERDA_ASSIGN_OR_RETURN(std::optional<Route> route, ResolveRoute(tv));
  if (!route) {
    INVERDA_ASSIGN_OR_RETURN(Table * table,
                             db_->GetTable(catalog_->DataTableName(tv)));
    for (const WriteOp& op : writes.ops) {
      switch (op.kind) {
        case WriteOp::Kind::kInsert:
          INVERDA_RETURN_IF_ERROR(table->Insert(op.key, op.row));
          break;
        case WriteOp::Kind::kUpdate:
          INVERDA_RETURN_IF_ERROR(table->Update(op.key, op.row));
          break;
        case WriteOp::Kind::kDelete:
          table->Erase(op.key);
          break;
      }
    }
    return Status::OK();
  }
  INVERDA_ASSIGN_OR_RETURN(SmoContext ctx, BuildContext(route->smo));
  INVERDA_ASSIGN_OR_RETURN(const Kernel* kernel, KernelForSmo(*ctx.smo));
  return kernel->Propagate(ctx, route->side, route->index, writes);
}

Result<int> AccessLayer::PropagationDistance(TvId tv) {
  int distance = 0;
  TvId current = tv;
  while (true) {
    INVERDA_ASSIGN_OR_RETURN(std::optional<Route> route,
                             ResolveRoute(current));
    if (!route) return distance;
    ++distance;
    // Follow the route to a table version on the data side of the SMO.
    const SmoInstance& inst = catalog_->smo(route->smo);
    const std::vector<TvId>& next_side =
        route->side == SmoSide::kSource ? inst.targets : inst.sources;
    if (next_side.empty()) return distance;
    current = next_side[0];
    if (distance > 1000) {
      return Status::Internal("propagation distance diverged");
    }
  }
}

}  // namespace inverda
