#include "inverda/inverda.h"

namespace inverda {

namespace {

// Decrements the ApplyToVersion recursion depth on every exit path.
struct DepthGuard {
  int* depth;
  explicit DepthGuard(int* d) : depth(d) { ++*depth; }
  ~DepthGuard() { --*depth; }
};

}  // namespace

Result<std::optional<AccessLayer::Route>> AccessLayer::ResolveRoute(TvId tv) {
  if (catalog_->IsPhysical(tv)) return std::optional<Route>();
  const TableVersion& info = catalog_->table_version(tv);
  // Case 2 (forwards): one outgoing SMO is materialized; the data is on its
  // target side, so tv is accessed as a source of that SMO.
  for (SmoId out : info.outgoing) {
    const SmoInstance& inst = catalog_->smo(out);
    if (inst.smo->kind() == SmoKind::kDropTable) continue;
    if (!inst.materialized) continue;
    Route route;
    route.smo = out;
    route.side = SmoSide::kSource;
    for (size_t i = 0; i < inst.sources.size(); ++i) {
      if (inst.sources[i] == tv) route.index = static_cast<int>(i);
    }
    return std::optional<Route>(route);
  }
  // Case 3 (backwards): the incoming SMO is virtualized; the data is on its
  // source side, so tv is accessed as a target of that SMO.
  const SmoInstance& in = catalog_->smo(info.incoming);
  if (in.smo->kind() == SmoKind::kCreateTable) {
    return Status::Internal("table version " + catalog_->TvLabel(tv) +
                            " has no data route");
  }
  Route route;
  route.smo = info.incoming;
  route.side = SmoSide::kTarget;
  for (size_t i = 0; i < in.targets.size(); ++i) {
    if (in.targets[i] == tv) route.index = static_cast<int>(i);
  }
  return std::optional<Route>(route);
}

Result<SmoContext> AccessLayer::BuildContext(SmoId id) {
  const SmoInstance& inst = catalog_->smo(id);
  SmoContext ctx;
  ctx.smo = inst.smo.get();
  ctx.materialized = inst.materialized;
  ctx.backend = this;
  ctx.memo = inst.memo.get();
  for (TvId src : inst.sources) {
    const TableVersion& tv = catalog_->table_version(src);
    ctx.sources.push_back(TvRef{src, &tv.schema});
  }
  for (TvId tgt : inst.targets) {
    const TableVersion& tv = catalog_->table_version(tgt);
    ctx.targets.push_back(TvRef{tgt, &tv.schema});
  }
  for (const std::string& aux :
       catalog_->PhysicalAuxNames(id, inst.materialized)) {
    ctx.aux_names[aux] = catalog_->AuxTableName(id, aux);
  }
  return ctx;
}

// --- derived-view cache -----------------------------------------------------

Result<AccessLayer::DepVec> AccessLayer::CollectDeps(TvId tv) {
  DepVec deps;
  std::set<TvId> visited;
  std::set<std::string> seen;
  auto add = [&](const std::string& name) {
    if (!seen.insert(name).second) return;
    deps.emplace_back(name, db_->TableEpoch(name).value_or(0));
  };
  std::vector<TvId> frontier{tv};
  while (!frontier.empty()) {
    TvId current = frontier.back();
    frontier.pop_back();
    if (!visited.insert(current).second) continue;
    INVERDA_ASSIGN_OR_RETURN(std::optional<Route> route,
                             ResolveRoute(current));
    if (!route) {
      add(catalog_->DataTableName(current));
      continue;
    }
    const SmoInstance& inst = catalog_->smo(route->smo);
    for (const std::string& aux :
         catalog_->PhysicalAuxNames(route->smo, inst.materialized)) {
      add(catalog_->AuxTableName(route->smo, aux));
    }
    // The kernel derives `current` from the data side of the SMO; every
    // table version there is a (possibly virtual) further dependency.
    const std::vector<TvId>& data_side =
        route->side == SmoSide::kSource ? inst.targets : inst.sources;
    frontier.insert(frontier.end(), data_side.begin(), data_side.end());
  }
  return deps;
}

const Table* AccessLayer::LookupCache(TvId tv) {
  auto it = cache_.find(tv);
  if (it == cache_.end()) return nullptr;
  for (const auto& [name, epoch] : it->second.deps) {
    std::optional<uint64_t> current = db_->TableEpoch(name);
    if (!current || *current != epoch) {
      EraseCacheEntry(tv);
      return nullptr;
    }
  }
  ++cache_hits_;
  ++cache_stats_[tv].hits;
  return &it->second.table;
}

Status AccessLayer::StoreCache(TvId tv, Table table) {
  INVERDA_ASSIGN_OR_RETURN(DepVec deps, CollectDeps(tv));
  cache_.insert_or_assign(tv, CacheEntry{std::move(table), std::move(deps)});
  return Status::OK();
}

void AccessLayer::EraseCacheEntry(TvId tv) {
  if (cache_.erase(tv) == 0) return;
  ++cache_invalidations_;
  ++cache_stats_[tv].invalidations;
}

void AccessLayer::InvalidateCache() {
  for (const auto& [tv, entry] : cache_) {
    (void)entry;
    ++cache_invalidations_;
    ++cache_stats_[tv].invalidations;
  }
  cache_.clear();
}

void AccessLayer::ResetCacheStats() {
  cache_hits_ = 0;
  cache_misses_ = 0;
  cache_invalidations_ = 0;
  cache_stats_.clear();
}

Status AccessLayer::InvalidateForWrite(TvId tv) {
  if (cache_.empty()) return Status::OK();
  INVERDA_ASSIGN_OR_RETURN(DepVec footprint_deps, CollectDeps(tv));
  std::set<std::string> footprint;
  for (const auto& [name, epoch] : footprint_deps) {
    (void)epoch;
    footprint.insert(name);
  }
  const std::set<TvId>& component = catalog_->ComponentOf(tv);
  std::vector<TvId> doomed;
  for (const auto& [cached_tv, entry] : cache_) {
    if (!component.count(cached_tv)) continue;  // disjoint lineage
    if (cached_tv == tv) {
      doomed.push_back(cached_tv);
      continue;
    }
    for (const auto& [name, epoch] : entry.deps) {
      (void)epoch;
      if (footprint.count(name)) {
        doomed.push_back(cached_tv);
        break;
      }
    }
  }
  for (TvId dead : doomed) EraseCacheEntry(dead);
  return Status::OK();
}

void AccessLayer::InvalidateForMigration(const std::set<SmoId>& flipped) {
  if (cache_.empty()) return;
  if (cache_mode_ == CacheMode::kClearAll) {
    InvalidateCache();
    return;
  }
  std::set<TvId> affected = catalog_->AffectedBySmos(flipped);
  std::vector<TvId> doomed;
  for (const auto& [tv, entry] : cache_) {
    (void)entry;
    if (affected.count(tv)) doomed.push_back(tv);
  }
  for (TvId dead : doomed) EraseCacheEntry(dead);
}

// --- reads ------------------------------------------------------------------

Status AccessLayer::ScanVersion(TvId tv, const RowCallback& fn) {
  INVERDA_ASSIGN_OR_RETURN(std::optional<Route> route, ResolveRoute(tv));
  if (!route) {
    INVERDA_ASSIGN_OR_RETURN(const Table* table,
                             db_->GetTableConst(catalog_->DataTableName(tv)));
    table->Scan(fn);
    return Status::OK();
  }
  if (cache_enabled_) {
    if (const Table* cached = LookupCache(tv)) {
      cached->Scan(fn);
      return Status::OK();
    }
  }
  INVERDA_ASSIGN_OR_RETURN(SmoContext ctx, BuildContext(route->smo));
  INVERDA_ASSIGN_OR_RETURN(const Kernel* kernel, KernelForSmo(*ctx.smo));
  Table tmp(catalog_->table_version(tv).schema);
  INVERDA_RETURN_IF_ERROR(
      kernel->Derive(ctx, route->side, route->index, std::nullopt, &tmp));
  tmp.Scan(fn);
  if (cache_enabled_) {
    ++cache_misses_;
    ++cache_stats_[tv].misses;
    INVERDA_RETURN_IF_ERROR(StoreCache(tv, std::move(tmp)));
  }
  return Status::OK();
}

Result<std::optional<Row>> AccessLayer::FindVersion(TvId tv, int64_t key) {
  if (cache_enabled_) {
    if (const Table* cached = LookupCache(tv)) {
      const Row* row = cached->Find(key);
      if (row == nullptr) return std::optional<Row>();
      return std::optional<Row>(*row);
    }
  }
  INVERDA_ASSIGN_OR_RETURN(std::optional<Route> route, ResolveRoute(tv));
  if (!route) {
    INVERDA_ASSIGN_OR_RETURN(const Table* table,
                             db_->GetTableConst(catalog_->DataTableName(tv)));
    const Row* row = table->Find(key);
    if (row == nullptr) return std::optional<Row>();
    return std::optional<Row>(*row);
  }
  INVERDA_ASSIGN_OR_RETURN(SmoContext ctx, BuildContext(route->smo));
  INVERDA_ASSIGN_OR_RETURN(const Kernel* kernel, KernelForSmo(*ctx.smo));
  Table tmp(catalog_->table_version(tv).schema);
  INVERDA_RETURN_IF_ERROR(
      kernel->Derive(ctx, route->side, route->index, key, &tmp));
  const Row* row = tmp.Find(key);
  if (row == nullptr) return std::optional<Row>();
  return std::optional<Row>(*row);
}

Status AccessLayer::ApplyToVersion(TvId tv, const WriteSet& writes) {
  if (writes.empty()) return Status::OK();
  const bool top_level = propagate_depth_ == 0;
  DepthGuard guard(&propagate_depth_);
  if (top_level) {
    last_trace_.Clear();
    // Invalidate before the write lands: entries (re)stored by reads that
    // happen mid-propagation capture the post-write epochs and stay valid.
    if (cache_enabled_) {
      switch (cache_mode_) {
        case CacheMode::kClearAll:
          InvalidateCache();
          break;
        case CacheMode::kGenealogy:
          INVERDA_RETURN_IF_ERROR(InvalidateForWrite(tv));
          break;
      }
    }
  }
  last_trace_.AddVersion(tv);
  INVERDA_ASSIGN_OR_RETURN(std::optional<Route> route, ResolveRoute(tv));
  if (!route) {
    const std::string table_name = catalog_->DataTableName(tv);
    last_trace_.AddTable(table_name);
    INVERDA_ASSIGN_OR_RETURN(Table * table, db_->GetTable(table_name));
    for (const WriteOp& op : writes.ops) {
      switch (op.kind) {
        case WriteOp::Kind::kInsert:
          INVERDA_RETURN_IF_ERROR(table->Insert(op.key, op.row));
          break;
        case WriteOp::Kind::kUpdate:
          INVERDA_RETURN_IF_ERROR(table->Update(op.key, op.row));
          break;
        case WriteOp::Kind::kDelete:
          table->Erase(op.key);
          break;
      }
    }
    return Status::OK();
  }
  const SmoInstance& inst = catalog_->smo(route->smo);
  for (const std::string& aux :
       catalog_->PhysicalAuxNames(route->smo, inst.materialized)) {
    last_trace_.AddTable(catalog_->AuxTableName(route->smo, aux));
  }
  INVERDA_ASSIGN_OR_RETURN(SmoContext ctx, BuildContext(route->smo));
  INVERDA_ASSIGN_OR_RETURN(const Kernel* kernel, KernelForSmo(*ctx.smo));
  return kernel->Propagate(ctx, route->side, route->index, writes);
}

Result<int> AccessLayer::PropagationDistance(TvId tv) {
  int distance = 0;
  TvId current = tv;
  while (true) {
    INVERDA_ASSIGN_OR_RETURN(std::optional<Route> route,
                             ResolveRoute(current));
    if (!route) return distance;
    ++distance;
    // Follow the route to a table version on the data side of the SMO.
    const SmoInstance& inst = catalog_->smo(route->smo);
    const std::vector<TvId>& next_side =
        route->side == SmoSide::kSource ? inst.targets : inst.sources;
    if (next_side.empty()) return distance;
    current = next_side[0];
    if (distance > 1000) {
      return Status::Internal("propagation distance diverged");
    }
  }
}

}  // namespace inverda
