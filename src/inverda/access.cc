#include <memory>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "inverda/inverda.h"

namespace inverda {

thread_local int AccessLayer::access_depth_ = 0;
thread_local WriteTrace AccessLayer::last_trace_;

namespace {

// Decrements the access recursion depth on every exit path.
struct DepthGuard {
  int* depth;
  explicit DepthGuard(int* d) : depth(d) { ++*depth; }
  ~DepthGuard() { --*depth; }
};

}  // namespace

// --- compiled plans ---------------------------------------------------------

Result<SmoContext> AccessLayer::BuildContext(SmoId id) {
  return compiler_.BuildContext(id);
}

Result<const plan::TvPlan*> AccessLayer::GetPlan(TvId tv) {
  return plan_cache_.Get(tv, catalog_->materialization_epoch(), compiler_);
}

Result<AccessLayer::PlanHandle> AccessLayer::ResolvePlan(TvId tv) {
  PlanHandle handle;
  if (plan_cache_enabled_) {
    INVERDA_ASSIGN_OR_RETURN(handle.cached, GetPlan(tv));
    return handle;
  }
  // Legacy-resolution mode: re-resolve the first hop from the catalog on
  // every access, like the pre-plan executor did. The plan lives on this
  // call's stack because kernels re-enter the AccessLayer recursively.
  INVERDA_ASSIGN_OR_RETURN(plan::TvPlan shallow, compiler_.CompileShallow(tv));
  handle.owned = std::make_unique<plan::TvPlan>(std::move(shallow));
  return handle;
}

Result<int> AccessLayer::PropagationDistance(TvId tv) {
  if (plan_cache_enabled_) {
    INVERDA_ASSIGN_OR_RETURN(const plan::TvPlan* p, GetPlan(tv));
    return p->distance();
  }
  INVERDA_ASSIGN_OR_RETURN(plan::TvPlan full, compiler_.Compile(tv));
  return full.distance();
}

// --- latching ---------------------------------------------------------------

void AccessLayer::AcquireLatches(TableLatchSet* latches, const plan::TvPlan& p,
                                 bool write) {
  // Kernel recursion (and migration staging inside the DDL-exclusive
  // facade section) runs under the top-level latch set; re-acquiring here
  // would self-deadlock on exclusive latches.
  if (access_depth_ > 0) return;
  const bool exclusive = write || p.derive_mutates;
  if (!p.full) {
    // Shallow plans (plan cache disabled) carry no footprint: fall back to
    // the exclusive whole-database latch — the legacy-resolution
    // concurrency model.
    latches->AcquireGlobal(&db_->latches());
    return;
  }
  // The footprint lists every physical table any access path of the
  // version can touch, so it covers both the derivation closure of reads
  // and the sibling derivations of a write's propagation chain.
  latches->Acquire(&db_->latches(), p.footprint, exclusive);
}

// --- derived-view cache -----------------------------------------------------

Result<AccessLayer::DepVec> AccessLayer::FootprintDeps(const plan::TvPlan& p) {
  const std::vector<std::string>* names = &p.footprint;
  plan::TvPlan full;
  if (!p.full) {
    INVERDA_ASSIGN_OR_RETURN(full, compiler_.Compile(p.tv));
    names = &full.footprint;
  }
  DepVec deps;
  deps.reserve(names->size());
  for (const std::string& name : *names) {
    deps.emplace_back(name, db_->TableEpoch(name).value_or(0));
  }
  return deps;
}

std::shared_ptr<const Table> AccessLayer::LookupCache(TvId tv) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(tv);
  if (it == cache_.end()) return nullptr;
  for (const auto& [name, epoch] : it->second.deps) {
    std::optional<uint64_t> current = db_->TableEpoch(name);
    if (!current || *current != epoch) {
      EraseCacheEntryLocked(tv);
      return nullptr;
    }
  }
  cache_hits_.fetch_add(1, std::memory_order_relaxed);
  ++cache_stats_[tv].hits;
  return it->second.table;
}

Status AccessLayer::StoreCache(const plan::TvPlan& p, Table table) {
  // Fingerprint before locking: FootprintDeps may compile (catalog walk),
  // which must not run under cache_mu_.
  INVERDA_ASSIGN_OR_RETURN(DepVec deps, FootprintDeps(p));
  auto view = std::make_shared<const Table>(std::move(table));
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_.insert_or_assign(p.tv, CacheEntry{std::move(view), std::move(deps)});
  return Status::OK();
}

void AccessLayer::CountCacheMiss(TvId tv) {
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(cache_mu_);
  ++cache_stats_[tv].misses;
}

void AccessLayer::EraseCacheEntryLocked(TvId tv) {
  if (cache_.erase(tv) == 0) return;
  cache_invalidations_.fetch_add(1, std::memory_order_relaxed);
  ++cache_stats_[tv].invalidations;
}

void AccessLayer::EraseCacheEntry(TvId tv) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  EraseCacheEntryLocked(tv);
}

void AccessLayer::InvalidateCache() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  for (const auto& [tv, entry] : cache_) {
    (void)entry;
    cache_invalidations_.fetch_add(1, std::memory_order_relaxed);
    ++cache_stats_[tv].invalidations;
  }
  cache_.clear();
}

void AccessLayer::ResetCacheStats() {
  cache_hits_.store(0, std::memory_order_relaxed);
  cache_misses_.store(0, std::memory_order_relaxed);
  cache_invalidations_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_stats_.clear();
}

Status AccessLayer::InvalidateForWrite(const plan::TvPlan& p) {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (cache_.empty()) return Status::OK();
  }
  INVERDA_ASSIGN_OR_RETURN(DepVec footprint_deps, FootprintDeps(p));
  std::set<std::string> footprint;
  for (const auto& [name, epoch] : footprint_deps) {
    (void)epoch;
    footprint.insert(name);
  }
  const std::set<TvId>& component = catalog_->ComponentOf(p.tv);
  std::lock_guard<std::mutex> lock(cache_mu_);
  std::vector<TvId> doomed;
  for (const auto& [cached_tv, entry] : cache_) {
    if (!component.count(cached_tv)) continue;  // disjoint lineage
    if (cached_tv == p.tv) {
      doomed.push_back(cached_tv);
      continue;
    }
    for (const auto& [name, epoch] : entry.deps) {
      (void)epoch;
      if (footprint.count(name)) {
        doomed.push_back(cached_tv);
        break;
      }
    }
  }
  for (TvId dead : doomed) EraseCacheEntryLocked(dead);
  return Status::OK();
}

void AccessLayer::InvalidateForMigration(const std::set<SmoId>& flipped) {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (cache_.empty()) return;
  }
  if (cache_mode_ == CacheMode::kClearAll) {
    InvalidateCache();
    return;
  }
  std::set<TvId> affected = catalog_->AffectedBySmos(flipped);
  std::lock_guard<std::mutex> lock(cache_mu_);
  std::vector<TvId> doomed;
  for (const auto& [tv, entry] : cache_) {
    (void)entry;
    if (affected.count(tv)) doomed.push_back(tv);
  }
  for (TvId dead : doomed) EraseCacheEntryLocked(dead);
}

// --- reads ------------------------------------------------------------------

Status AccessLayer::ScanVersion(TvId tv, const RowCallback& fn) {
  INVERDA_ASSIGN_OR_RETURN(PlanHandle handle, ResolvePlan(tv));
  const plan::TvPlan& p = *handle.get();
  TableLatchSet latches;
  AcquireLatches(&latches, p, /*write=*/false);
  DepthGuard guard(&access_depth_);
  if (p.physical) {
    INVERDA_ASSIGN_OR_RETURN(const Table* table,
                             db_->GetTableConst(p.data_table));
    table->Scan(fn);
    return Status::OK();
  }
  if (cache_enabled_) {
    if (std::shared_ptr<const Table> cached = LookupCache(tv)) {
      cached->Scan(fn);
      return Status::OK();
    }
  }
  Table tmp(*p.schema);
  INVERDA_RETURN_IF_ERROR(p.steps.front().Derive(std::nullopt, &tmp));
  tmp.Scan(fn);
  if (cache_enabled_) {
    CountCacheMiss(tv);
    INVERDA_RETURN_IF_ERROR(StoreCache(p, std::move(tmp)));
  }
  return Status::OK();
}

Result<std::optional<Row>> AccessLayer::FindVersion(TvId tv, int64_t key) {
  INVERDA_ASSIGN_OR_RETURN(PlanHandle handle, ResolvePlan(tv));
  const plan::TvPlan& p = *handle.get();
  TableLatchSet latches;
  AcquireLatches(&latches, p, /*write=*/false);
  DepthGuard guard(&access_depth_);
  if (p.physical) {
    INVERDA_ASSIGN_OR_RETURN(const Table* table,
                             db_->GetTableConst(p.data_table));
    const Row* row = table->Find(key);
    if (row == nullptr) return std::optional<Row>();
    return std::optional<Row>(*row);
  }
  if (cache_enabled_) {
    if (std::shared_ptr<const Table> cached = LookupCache(tv)) {
      const Row* row = cached->Find(key);
      if (row == nullptr) return std::optional<Row>();
      return std::optional<Row>(*row);
    }
    // Same accounting as ScanVersion's miss path: derive the full view
    // once, store it, and answer this (and subsequent) lookups from it.
    CountCacheMiss(tv);
    Table tmp(*p.schema);
    INVERDA_RETURN_IF_ERROR(p.steps.front().Derive(std::nullopt, &tmp));
    std::optional<Row> found;
    if (const Row* row = tmp.Find(key)) found = *row;
    INVERDA_RETURN_IF_ERROR(StoreCache(p, std::move(tmp)));
    return found;
  }
  Table tmp(*p.schema);
  INVERDA_RETURN_IF_ERROR(p.steps.front().Derive(key, &tmp));
  const Row* row = tmp.Find(key);
  if (row == nullptr) return std::optional<Row>();
  return std::optional<Row>(*row);
}

// --- writes -----------------------------------------------------------------

Status AccessLayer::ApplyToVersion(TvId tv, const WriteSet& writes) {
  if (writes.empty()) return Status::OK();
  const bool top_level = access_depth_ == 0;
  INVERDA_ASSIGN_OR_RETURN(PlanHandle handle, ResolvePlan(tv));
  const plan::TvPlan& p = *handle.get();
  TableLatchSet latches;
  AcquireLatches(&latches, p, /*write=*/true);
  DepthGuard guard(&access_depth_);
  if (top_level) {
    last_trace_.Clear();
    // Invalidate before the write lands: entries (re)stored by reads that
    // happen mid-propagation capture the post-write epochs and stay valid.
    if (cache_enabled_) {
      switch (cache_mode_) {
        case CacheMode::kClearAll:
          InvalidateCache();
          break;
        case CacheMode::kGenealogy:
          INVERDA_RETURN_IF_ERROR(InvalidateForWrite(p));
          break;
      }
    }
  }
  last_trace_.AddVersion(tv);
  if (p.physical) {
    last_trace_.AddTable(p.data_table);
    INVERDA_ASSIGN_OR_RETURN(Table * table, db_->GetTable(p.data_table));
    for (const WriteOp& op : writes.ops) {
      switch (op.kind) {
        case WriteOp::Kind::kInsert:
          INVERDA_RETURN_IF_ERROR(table->Insert(op.key, op.row));
          break;
        case WriteOp::Kind::kUpdate:
          INVERDA_RETURN_IF_ERROR(table->Update(op.key, op.row));
          break;
        case WriteOp::Kind::kDelete:
          table->Erase(op.key);
          break;
      }
    }
    return Status::OK();
  }
  const plan::PlanStep& step = p.steps.front();
  for (const auto& [aux, physical_name] : step.ctx.aux_names) {
    (void)aux;
    last_trace_.AddTable(physical_name);
  }
  return step.Propagate(writes);
}

}  // namespace inverda
