#include "inverda/export.h"

#include "util/strings.h"

namespace inverda {

Result<std::string> ExportBidel(const VersionCatalog& catalog) {
  std::string out;
  for (const std::string& name : catalog.VersionNamesInOrder()) {
    INVERDA_ASSIGN_OR_RETURN(const SchemaVersionInfo* info,
                             catalog.FindVersion(name));
    out += "CREATE SCHEMA VERSION " + info->name;
    if (info->parent) out += " FROM " + *info->parent;
    out += " WITH\n";
    for (SmoId id : info->smos) {
      if (!catalog.HasSmo(id)) continue;  // GC'd by a dropped sibling
      out += "  " + catalog.smo(id).smo->ToString() + ";\n";
    }
  }
  return out;
}

Result<std::string> ExportData(Inverda* db, const std::string& version) {
  INVERDA_ASSIGN_OR_RETURN(const SchemaVersionInfo* info,
                           db->catalog().FindVersion(version));
  std::string out;
  for (const auto& [table, tv] : info->tables) {
    (void)tv;
    const std::string& table_name =
        db->catalog().table_version(info->tables.at(table)).name;
    INVERDA_ASSIGN_OR_RETURN(std::vector<KeyedRow> rows,
                             db->Select(version, table_name));
    for (const KeyedRow& kr : rows) {
      std::vector<std::string> literals;
      literals.reserve(kr.row.size());
      for (const Value& v : kr.row) {
        literals.push_back(v.ToString());
      }
      out += "INSERT INTO " + info->name + "." + table_name + " VALUES (" +
             Join(literals, ", ") + ");\n";
    }
  }
  return out;
}

Result<std::string> ExportSession(Inverda* db) {
  INVERDA_ASSIGN_OR_RETURN(std::string out, ExportBidel(db->catalog()));
  for (const std::string& name : db->catalog().VersionNamesInOrder()) {
    INVERDA_ASSIGN_OR_RETURN(const SchemaVersionInfo* info,
                             db->catalog().FindVersion(name));
    if (info->parent) continue;  // data entered at the roots
    INVERDA_ASSIGN_OR_RETURN(std::string data, ExportData(db, name));
    out += data;
  }
  return out;
}

}  // namespace inverda
