#ifndef INVERDA_INVERDA_EXPORT_H_
#define INVERDA_INVERDA_EXPORT_H_

#include <string>

#include "inverda/inverda.h"

namespace inverda {

/// Logical export of an InVerDa instance as a replayable shell script.
///
/// `ExportBidel` reconstructs the BiDEL script that recreates the whole
/// schema genealogy (every CREATE SCHEMA VERSION statement in creation
/// order). `ExportData` renders one version's visible rows as INSERT
/// statements in inverda_shell syntax. `ExportSession` combines both: the
/// genealogy plus the data of every *root* version (versions without a
/// parent), which is where data entry started.
///
/// This is a logical dump: replaying it reproduces every version's visible
/// data for histories whose writes all went through the dumped versions.
/// Divergence held in auxiliary tables (independently updated twins,
/// pinned computed columns) is flattened to the exported versions' views.
Result<std::string> ExportBidel(const VersionCatalog& catalog);

Result<std::string> ExportData(Inverda* db, const std::string& version);

Result<std::string> ExportSession(Inverda* db);

}  // namespace inverda

#endif  // INVERDA_INVERDA_EXPORT_H_
