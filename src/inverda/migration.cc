#include "inverda/inverda.h"

#include <mutex>
#include <set>
#include <shared_mutex>

#include "util/strings.h"

namespace inverda {
namespace {

// A staged physical table: the content a table will have after the flip.
struct StagedTable {
  std::string name;
  Table content;
};

}  // namespace

Status Inverda::Materialize(const MaterializeRequest& request) {
  const bool has_targets = !request.targets.empty();
  const bool has_schema = request.schema.has_value();
  if (has_targets && has_schema) {
    return Status::InvalidArgument(
        "materialize request: set targets or schema, not both");
  }
  if (!has_targets && !has_schema) {
    return Status::InvalidArgument(
        "materialize request: set targets or schema");
  }

  if (request.online) {
    // The coordinator takes the exclusive catalog lock itself during
    // admission and the flip; we must hold no locks here.
    if (has_schema) {
      INVERDA_RETURN_IF_ERROR(migrate_.StartSchema(*request.schema));
    } else {
      INVERDA_RETURN_IF_ERROR(migrate_.Start(request.targets));
    }
    if (request.wait) return migrate_.Wait();
    return Status::OK();
  }

  // Blocking DDL: exclusive — a migration flips routes and swaps physical
  // tables; no access may observe a half-flipped state (clients see the
  // catalog epoch strictly before or strictly after).
  std::unique_lock<std::shared_mutex> ddl(catalog_mu_);
  INVERDA_RETURN_IF_ERROR(CheckNoActiveMigration());
  if (has_schema) return MaterializeSchemaLocked(*request.schema);
  return MaterializeLocked(request.targets);
}

Status Inverda::Materialize(const std::vector<std::string>& targets) {
  return Materialize(MaterializeRequest::Targets(targets));
}

Status Inverda::MaterializeSchema(const std::set<SmoId>& m) {
  return Materialize(MaterializeRequest::Schema(m));
}

Status Inverda::MaterializeOnline(const std::vector<std::string>& targets) {
  return Materialize(
      MaterializeRequest::Targets(targets, /*online=*/true, /*wait=*/false));
}

Status Inverda::MaterializeSchemaOnline(const std::set<SmoId>& m) {
  return Materialize(
      MaterializeRequest::Schema(m, /*online=*/true, /*wait=*/false));
}

Result<std::set<SmoId>> Inverda::ResolveMaterializationLocked(
    const std::vector<std::string>& targets) {
  // Resolve the targets ("Version" or "Version.table") to table versions.
  std::vector<TvId> tables;
  for (const std::string& target : targets) {
    std::vector<std::string> parts = Split(target, '.');
    if (parts.size() == 1) {
      INVERDA_ASSIGN_OR_RETURN(const SchemaVersionInfo* info,
                               catalog_.FindVersion(parts[0]));
      for (const auto& [name, tv] : info->tables) {
        (void)name;
        tables.push_back(tv);
      }
    } else if (parts.size() == 2) {
      INVERDA_ASSIGN_OR_RETURN(TvId tv,
                               catalog_.ResolveTable(parts[0], parts[1]));
      tables.push_back(tv);
    } else {
      return Status::InvalidArgument("bad MATERIALIZE target: " + target);
    }
  }
  return catalog_.MaterializationForTables(tables);
}

Status Inverda::MaterializeLocked(const std::vector<std::string>& targets) {
  INVERDA_ASSIGN_OR_RETURN(std::set<SmoId> m,
                           ResolveMaterializationLocked(targets));
  return MaterializeSchemaLocked(m);
}

Status Inverda::MaterializeSchemaLocked(const std::set<SmoId>& m) {
  INVERDA_RETURN_IF_ERROR(catalog_.CheckValidMaterialization(m));

  std::set<SmoId> old_m = catalog_.CurrentMaterialization();
  if (old_m == m) return Status::OK();  // nothing to do

  // The SMO instances whose state flips.
  std::vector<SmoId> flipping;
  for (SmoId id : catalog_.AllSmos()) {
    bool was = old_m.count(id) > 0;
    bool will = m.count(id) > 0;
    const SmoInstance& inst = catalog_.smo(id);
    if (inst.smo->kind() == SmoKind::kCreateTable ||
        inst.smo->kind() == SmoKind::kDropTable) {
      continue;
    }
    if (was != will) flipping.push_back(id);
  }

  // Physical data tables before and after.
  std::set<TvId> old_physical, new_physical;
  for (TvId tv : catalog_.PhysicalTables(old_m)) old_physical.insert(tv);
  for (TvId tv : catalog_.PhysicalTables(m)) new_physical.insert(tv);

  // Stage 1: derive every newly physical relation under the OLD state.
  std::vector<StagedTable> staged;
  for (TvId tv : new_physical) {
    if (old_physical.count(tv)) continue;
    TableSchema schema = catalog_.table_version(tv).schema;
    schema.set_name(catalog_.DataTableName(tv));
    StagedTable st{catalog_.DataTableName(tv), Table(std::move(schema))};
    Status status = Status::OK();
    INVERDA_RETURN_IF_ERROR(
        access_.ScanVersion(tv, [&](int64_t key, const Row& row) {
          if (status.ok()) status = st.content.Upsert(key, row);
        }));
    INVERDA_RETURN_IF_ERROR(status);
    staged.push_back(std::move(st));
  }
  // Newly required aux tables (the flipped side's aux), derived via the
  // kernels under the old state. Aux marked both_sides persist unchanged.
  for (SmoId id : flipping) {
    const SmoInstance& inst = catalog_.smo(id);
    bool new_state = m.count(id) > 0;
    std::vector<std::string> old_aux =
        catalog_.PhysicalAuxNames(id, inst.materialized);
    for (const std::string& aux : catalog_.PhysicalAuxNames(id, new_state)) {
      bool existed = false;
      for (const std::string& o : old_aux) {
        if (o == aux) existed = true;
      }
      if (existed) continue;
      const AuxDef* def = nullptr;
      for (const AuxDef& d : inst.aux_defs) {
        if (d.short_name == aux) def = &d;
      }
      if (def == nullptr) {
        return Status::Internal("aux definition missing: " + aux);
      }
      TableSchema schema(catalog_.AuxTableName(id, aux), def->payload);
      StagedTable st{schema.name(), Table(std::move(schema))};
      INVERDA_ASSIGN_OR_RETURN(SmoContext ctx, access_.BuildContext(id));
      INVERDA_ASSIGN_OR_RETURN(const Kernel* kernel, KernelForSmo(*inst.smo));
      INVERDA_RETURN_IF_ERROR(kernel->DeriveAux(ctx, aux, &st.content));
      staged.push_back(std::move(st));
    }
  }

  // Stage 2: swap. Snapshot first so any failure restores the old world.
  Database::SnapshotState snapshot = db_.Snapshot();
  std::vector<std::pair<SmoId, bool>> old_states;
  auto rollback = [&]() {
    db_.Restore(std::move(snapshot));
    for (auto& [id, state] : old_states) {
      catalog_.mutable_smo(id).materialized = state;
    }
    // Un-flipping is a materialization change too: compiled plans pinned
    // to the post-flip epoch must not survive the rollback.
    if (!old_states.empty()) catalog_.BumpMaterializationEpoch();
  };

  Status status = Status::OK();
  // Drop stale physical data tables.
  for (TvId tv : old_physical) {
    if (new_physical.count(tv)) continue;
    Status s = db_.DropTable(catalog_.DataTableName(tv));
    if (!s.ok()) status = s;
  }
  // Drop stale aux tables.
  for (SmoId id : flipping) {
    const SmoInstance& inst = catalog_.smo(id);
    bool new_state = m.count(id) > 0;
    std::vector<std::string> keep = catalog_.PhysicalAuxNames(id, new_state);
    for (const std::string& aux :
         catalog_.PhysicalAuxNames(id, inst.materialized)) {
      bool kept = false;
      for (const std::string& k : keep) {
        if (k == aux) kept = true;
      }
      if (kept) continue;
      Status s = db_.DropTable(catalog_.AuxTableName(id, aux));
      if (!s.ok()) status = s;
    }
  }
  // Install the staged tables.
  if (status.ok()) {
    for (StagedTable& st : staged) {
      Status s = db_.CreateTable(st.content.schema());
      if (!s.ok()) {
        status = s;
        break;
      }
      Result<Table*> table = db_.GetTable(st.name);
      if (!table.ok()) {
        status = table.status();
        break;
      }
      **table = std::move(st.content);
    }
  }
  // Flip the materialization states.
  if (status.ok()) {
    for (SmoId id : flipping) {
      SmoInstance& inst = catalog_.mutable_smo(id);
      old_states.emplace_back(id, inst.materialized);
      inst.materialized = m.count(id) > 0;
    }
    if (!flipping.empty()) catalog_.BumpMaterializationEpoch();
  }
  // Only the versions whose access path passes through a flipped SMO can
  // change their route; everything else keeps its cached view. (Dropped /
  // recreated physical tables additionally fail the epoch validation of any
  // entry that read them.)
  access_.InvalidateForMigration(
      std::set<SmoId>(flipping.begin(), flipping.end()));
  if (!status.ok()) {
    rollback();
    return status;
  }
  return Status::OK();
}

}  // namespace inverda
