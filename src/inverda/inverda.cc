#include "inverda/inverda.h"

#include <mutex>
#include <shared_mutex>

#include "analysis/analyzer.h"
#include "bidel/parser.h"
#include "sqlgen/sqlgen.h"

namespace inverda {

Inverda::Inverda(int shards)
    : db_(shards),
      access_(&catalog_, &db_, &obs_),
      advisor_(this, &obs_),
      migrate_(this, &obs_) {}

Status Inverda::Reshard(int shards) {
  // Exclusive like DDL: re-bucketing moves rows between shard maps, so no
  // access may be in flight while the partition changes.
  std::unique_lock<std::shared_mutex> ddl(catalog_mu_);
  INVERDA_RETURN_IF_ERROR(CheckNoActiveMigration());
  db_.Reshard(shards);
  return Status::OK();
}

Status Inverda::CheckNoActiveMigration() const {
  if (migrate_.active()) {
    return Status::InvalidState(
        "an online migration is in progress; wait for it or abort it first");
  }
  return Status::OK();
}

Status Inverda::WaitForMigration() { return migrate_.Wait(); }

Status Inverda::AbortMigration() { return migrate_.Abort(); }

Status Inverda::Execute(const std::string& bidel_script) {
  INVERDA_ASSIGN_OR_RETURN(std::vector<BidelStatement> statements,
                           ParseBidel(bidel_script));
  for (const BidelStatement& stmt : statements) {
    if (const auto* evolution = std::get_if<EvolutionStatement>(&stmt)) {
      INVERDA_RETURN_IF_ERROR(CreateSchemaVersion(*evolution));
    } else if (const auto* drop = std::get_if<DropVersionStatement>(&stmt)) {
      INVERDA_RETURN_IF_ERROR(DropSchemaVersion(drop->version));
    } else if (const auto* mat = std::get_if<MaterializeStatement>(&stmt)) {
      INVERDA_RETURN_IF_ERROR(
          Materialize(MaterializeRequest::Targets(mat->targets)));
    }
  }
  return Status::OK();
}

Status Inverda::ProvisionSmo(SmoId id) {
  const SmoInstance& inst = catalog_.smo(id);
  // Data tables of targets that are physically stored right away (only
  // CREATE TABLE targets: all other new SMOs start virtualized, so the data
  // stays where it was).
  for (TvId tgt : inst.targets) {
    if (catalog_.IsPhysical(tgt)) {
      TableSchema schema = catalog_.table_version(tgt).schema;
      schema.set_name(catalog_.DataTableName(tgt));
      INVERDA_RETURN_IF_ERROR(db_.CreateTable(std::move(schema)));
    }
  }
  // Aux tables of the initial materialization state.
  for (const std::string& aux :
       catalog_.PhysicalAuxNames(id, inst.materialized)) {
    for (const AuxDef& def : inst.aux_defs) {
      if (def.short_name != aux) continue;
      TableSchema schema(catalog_.AuxTableName(id, aux), def.payload);
      INVERDA_RETURN_IF_ERROR(db_.CreateTable(std::move(schema)));
    }
  }
  return Status::OK();
}

Status Inverda::CreateSchemaVersion(const EvolutionStatement& stmt) {
  // DDL: exclusive — no access may observe a half-registered evolution.
  std::unique_lock<std::shared_mutex> ddl(catalog_mu_);
  INVERDA_RETURN_IF_ERROR(CheckNoActiveMigration());
  // The static-analysis gate: errors reject the evolution before any
  // catalog mutation or delta-code provisioning; warnings and notes are
  // recorded on the created version (shown by DescribeCatalog).
  AnalysisReport report = AnalyzeEvolution(catalog_, stmt);
  INVERDA_RETURN_IF_ERROR(ReportToStatus(report));

  INVERDA_ASSIGN_OR_RETURN(std::vector<SmoId> new_smos,
                           catalog_.ApplyEvolution(stmt));
  for (SmoId id : new_smos) {
    INVERDA_RETURN_IF_ERROR(ProvisionSmo(id));
  }

  // Record the lint findings, cross-referencing the delta-code artifacts
  // (views/triggers) each registered SMO instance would install.
  std::vector<std::string> findings = RecordableWarnings(report);
  for (SmoId id : new_smos) {
    Result<std::vector<std::string>> artifacts =
        DeltaArtifactNames(catalog_, id);
    if (!artifacts.ok() || artifacts->empty()) continue;
    std::string line = "delta-code[" + catalog_.smo(id).smo->ToString() + "]:";
    for (const std::string& name : *artifacts) line += " " + name + ",";
    line.pop_back();
    findings.push_back(std::move(line));
  }
  INVERDA_RETURN_IF_ERROR(
      catalog_.SetLintWarnings(stmt.new_version, std::move(findings)));
  return Status::OK();
}

Status Inverda::DropSchemaVersion(const std::string& name) {
  // DDL: exclusive — physical tables disappear below any in-flight access
  // otherwise.
  std::unique_lock<std::shared_mutex> ddl(catalog_mu_);
  INVERDA_RETURN_IF_ERROR(CheckNoActiveMigration());
  access_.InvalidateCache();
  INVERDA_ASSIGN_OR_RETURN(DropResult result, catalog_.DropVersion(name));
  // Physical cleanup: aux tables of removed SMO instances. Removed table
  // versions are never physical (the catalog refuses otherwise), but their
  // data tables may linger from earlier materializations.
  std::vector<std::string> names = db_.TableNames();
  for (SmoId id : result.removed_smos) {
    std::string prefix = "a" + std::to_string(id) + "_";
    for (const std::string& table : names) {
      if (table.rfind(prefix, 0) == 0) {
        INVERDA_RETURN_IF_ERROR(db_.DropTable(table));
      }
    }
  }
  for (TvId id : result.removed_tables) {
    std::string data = "d" + std::to_string(id) + "_";
    for (const std::string& table : names) {
      if (table.rfind(data, 0) == 0) {
        INVERDA_RETURN_IF_ERROR(db_.DropTable(table));
      }
    }
  }
  return Status::OK();
}

Result<TvId> Inverda::Resolve(const std::string& version,
                              const std::string& table) {
  return catalog_.ResolveTable(version, table);
}

Result<std::vector<KeyedRow>> Inverda::Select(const std::string& version,
                                              const std::string& table) {
  // Declared before the lock so a triggered auto-materialize runs after the
  // shared latch is released (the migration admission path takes it
  // exclusively).
  advisor::AutoTickGuard auto_tick(&advisor_);
  std::shared_lock<std::shared_mutex> dml(catalog_mu_);
  INVERDA_ASSIGN_OR_RETURN(TvId tv, Resolve(version, table));
  std::vector<KeyedRow> rows;
  INVERDA_RETURN_IF_ERROR(access_.ScanVersion(
      tv, [&rows](int64_t key, const Row& row) {
        rows.push_back({key, row});
      }));
  return rows;
}

Result<std::vector<KeyedRow>> Inverda::SelectWhere(
    const std::string& version, const std::string& table,
    const Expression& predicate) {
  advisor::AutoTickGuard auto_tick(&advisor_);
  std::shared_lock<std::shared_mutex> dml(catalog_mu_);
  return SelectWhereLocked(version, table, predicate);
}

Result<std::vector<KeyedRow>> Inverda::SelectWhereLocked(
    const std::string& version, const std::string& table,
    const Expression& predicate) {
  INVERDA_ASSIGN_OR_RETURN(TvId tv, Resolve(version, table));
  const TableSchema& schema = catalog_.table_version(tv).schema;
  std::vector<KeyedRow> rows;
  Status status = Status::OK();
  INVERDA_RETURN_IF_ERROR(
      access_.ScanVersion(tv, [&](int64_t key, const Row& row) {
        if (!status.ok()) return;
        Result<bool> match = predicate.EvalBool(schema, row);
        if (!match.ok()) {
          status = match.status();
          return;
        }
        if (*match) rows.push_back({key, row});
      }));
  INVERDA_RETURN_IF_ERROR(status);
  return rows;
}

Result<std::optional<Row>> Inverda::Get(const std::string& version,
                                        const std::string& table,
                                        int64_t key) {
  advisor::AutoTickGuard auto_tick(&advisor_);
  std::shared_lock<std::shared_mutex> dml(catalog_mu_);
  INVERDA_ASSIGN_OR_RETURN(TvId tv, Resolve(version, table));
  return access_.FindVersion(tv, key);
}

Result<int64_t> Inverda::Insert(const std::string& version,
                                const std::string& table, Row row) {
  advisor::AutoTickGuard auto_tick(&advisor_);
  std::shared_lock<std::shared_mutex> dml(catalog_mu_);
  INVERDA_ASSIGN_OR_RETURN(TvId tv, Resolve(version, table));
  const TableSchema& schema = catalog_.table_version(tv).schema;
  if (static_cast<int>(row.size()) != schema.num_columns()) {
    return Status::InvalidArgument("row width does not match " +
                                   schema.ToString());
  }
  // Entirely-ω tuples are not representable across vertical SMOs (the
  // paper's rules use all-ω parts as the "absent" marker); reject them
  // uniformly so no version can create a tuple another SMO would lose.
  if (!row.empty() && AllNull(row)) {
    return Status::InvalidArgument("cannot insert an all-NULL tuple");
  }
  int64_t key = db_.sequence().Next();
  WriteSet ws;
  ws.Add(WriteOp::Insert(key, std::move(row)));
  INVERDA_RETURN_IF_ERROR(access_.ApplyToVersion(tv, ws));
  return key;
}

Status Inverda::Update(const std::string& version, const std::string& table,
                       int64_t key, Row row) {
  advisor::AutoTickGuard auto_tick(&advisor_);
  std::shared_lock<std::shared_mutex> dml(catalog_mu_);
  INVERDA_ASSIGN_OR_RETURN(TvId tv, Resolve(version, table));
  const TableSchema& schema = catalog_.table_version(tv).schema;
  if (static_cast<int>(row.size()) != schema.num_columns()) {
    return Status::InvalidArgument("row width does not match " +
                                   schema.ToString());
  }
  if (!row.empty() && AllNull(row)) {
    return Status::InvalidArgument("cannot update a tuple to all-NULL");
  }
  WriteSet ws;
  ws.Add(WriteOp::Update(key, std::move(row)));
  return access_.ApplyToVersion(tv, ws);
}

Status Inverda::Delete(const std::string& version, const std::string& table,
                       int64_t key) {
  advisor::AutoTickGuard auto_tick(&advisor_);
  std::shared_lock<std::shared_mutex> dml(catalog_mu_);
  INVERDA_ASSIGN_OR_RETURN(TvId tv, Resolve(version, table));
  WriteSet ws;
  ws.Add(WriteOp::Delete(key));
  return access_.ApplyToVersion(tv, ws);
}

Result<int64_t> Inverda::UpdateWhere(
    const std::string& version, const std::string& table,
    const Expression& predicate,
    const std::function<Row(const Row&)>& make_row) {
  advisor::AutoTickGuard auto_tick(&advisor_);
  std::shared_lock<std::shared_mutex> dml(catalog_mu_);
  INVERDA_ASSIGN_OR_RETURN(std::vector<KeyedRow> matches,
                           SelectWhereLocked(version, table, predicate));
  INVERDA_ASSIGN_OR_RETURN(TvId tv, Resolve(version, table));
  WriteSet ws;
  for (const KeyedRow& kr : matches) {
    ws.Add(WriteOp::Update(kr.key, make_row(kr.row)));
  }
  INVERDA_RETURN_IF_ERROR(access_.ApplyToVersion(tv, ws));
  return static_cast<int64_t>(matches.size());
}

Result<int64_t> Inverda::DeleteWhere(const std::string& version,
                                     const std::string& table,
                                     const Expression& predicate) {
  advisor::AutoTickGuard auto_tick(&advisor_);
  std::shared_lock<std::shared_mutex> dml(catalog_mu_);
  INVERDA_ASSIGN_OR_RETURN(std::vector<KeyedRow> matches,
                           SelectWhereLocked(version, table, predicate));
  INVERDA_ASSIGN_OR_RETURN(TvId tv, Resolve(version, table));
  WriteSet ws;
  for (const KeyedRow& kr : matches) {
    ws.Add(WriteOp::Delete(kr.key));
  }
  INVERDA_RETURN_IF_ERROR(access_.ApplyToVersion(tv, ws));
  return static_cast<int64_t>(matches.size());
}

Result<TableSchema> Inverda::GetSchema(const std::string& version,
                                       const std::string& table) {
  std::shared_lock<std::shared_mutex> dml(catalog_mu_);
  INVERDA_ASSIGN_OR_RETURN(TvId tv, Resolve(version, table));
  return catalog_.table_version(tv).schema;
}

Result<verify::VerifySummary> Inverda::VerifyPlans(
    const verify::VerifyOptions& options) {
  // Shared: verification only compiles and reads; the exclusive DDL side
  // keeps the catalog shape stable for the duration.
  std::shared_lock<std::shared_mutex> dml(catalog_mu_);
  verify::VerifyOptions opts = options;
  // The lock-order analysis models the latch granularity the executor
  // actually uses, so it needs the active shard count.
  if (opts.shards <= 0) opts.shards = db_.shards();
  return verify::VerifyGenealogy(catalog_, access_.compiler(), opts);
}

}  // namespace inverda
