#ifndef INVERDA_INVERDA_INVERDA_H_
#define INVERDA_INVERDA_INVERDA_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "advisor/advisor.h"
#include "catalog/catalog.h"
#include "expr/expression.h"
#include "mapping/side.h"
#include "migrate/coordinator.h"
#include "obs/observability.h"
#include "plan/compiler.h"
#include "plan/plan.h"
#include "storage/database.h"
#include "util/status.h"
#include "verify/verifier.h"

namespace inverda {

class Inverda;

/// Implements AccessBackend on top of the catalog and physical storage: it
/// is the executable form of the generated delta code. A thin executor
/// over compiled access plans (src/plan): each operation resolves the
/// table version's plan — a cache hit on the hot path, one compile per
/// materialization epoch otherwise — and executes its first step; the
/// mapping kernels recurse through the rest of the chain (Figure 6's three
/// cases applied transitively).
///
/// Concurrency (docs/concurrency.md): every top-level operation latches the
/// physical tables in its plan's footprint through the database's
/// LatchRegistry — shared for pure reads, exclusive for writes and for
/// plans whose read path mutates id state (TvPlan::derive_mutates) — so
/// reads across any mix of schema versions run fully in parallel and
/// conflict only when their footprints overlap a writer's. Kernel recursion
/// re-enters under the top-level latch set (a thread-local depth counter
/// suppresses nested acquisition). Catalog-shape changes never race with
/// operations: the Inverda facade serializes DDL against all data access.
/// The configuration setters (set_plan_cache_enabled, set_cache_enabled,
/// set_cache_mode) are not thread-safe; configure before going concurrent.
class AccessLayer : public AccessBackend {
 public:
  /// `obs` is the owning facade's observability bundle: the constructor
  /// caches counter/histogram pointers for the hot paths and registers the
  /// plan cache, view cache and compiler as pull-sources of the registry.
  AccessLayer(VersionCatalog* catalog, Database* db, obs::Observability* obs);

  Status ScanVersion(TvId tv, const RowCallback& fn) override;
  Status ScanVersionBatch(TvId tv, RowBatch* out) override;
  Result<std::optional<Row>> FindVersion(TvId tv, int64_t key) override;
  Status ApplyToVersion(TvId tv, const WriteSet& writes) override;
  Database& db() override { return *db_; }

  /// Builds the execution context of one SMO instance under the current
  /// materialization (delegates to the plan compiler; used by migration to
  /// derive aux tables for a flipped state).
  Result<SmoContext> BuildContext(SmoId id);

  /// Number of SMO instances a read/write of `tv` is propagated through
  /// before reaching physical data (0 when physical). This is the compiled
  /// plan's step count.
  Result<int> PropagationDistance(TvId tv);

  /// The compiled access plan of `tv` under the current materialization
  /// epoch, caching on first use. The pointer stays valid until the next
  /// evolution, migration, or drop. Used by EXPLAIN and the executor.
  Result<const plan::TvPlan*> GetPlan(TvId tv);

  /// Plan-cache toggle: when disabled every access re-resolves its first
  /// hop from the catalog, reproducing the pre-plan executor's per-access
  /// work. On by default; bench/microbench_plan uses the off state as the
  /// legacy-resolution baseline.
  void set_plan_cache_enabled(bool enabled) { plan_cache_enabled_ = enabled; }
  bool plan_cache_enabled() const { return plan_cache_enabled_; }

  /// Batch-execution toggle: when enabled (default) full scans derive
  /// through the kernels' columnar batch entry points; when disabled they
  /// run row-at-a-time, the unbatched baseline bench/microbench_plan
  /// measures. Not thread-safe; configure before going concurrent.
  void set_batch_enabled(bool enabled) { batch_enabled_ = enabled; }
  bool batch_enabled() const { return batch_enabled_; }

  /// Fusion toggle (plan/fused.h): forwards to the plan compiler and drops
  /// every cached plan so subsequent compiles reflect the setting. On by
  /// default; the off state is the hop-by-hop baseline. Not thread-safe.
  void set_fusion_enabled(bool enabled) {
    compiler_.set_fusion_enabled(enabled);
    plan_cache_.Clear();
  }
  bool fusion_enabled() const { return compiler_.fusion_enabled(); }

  /// Post-compile verification gate (verify/verifier.h): forwards to the
  /// plan compiler and drops every cached plan so subsequent compiles pass
  /// through the gate. Off by default; rejected fusions are counted in the
  /// registry as plan_verify.fusion_rejected. Not thread-safe.
  void set_verify_enabled(bool enabled) {
    compiler_.set_verify_enabled(enabled);
    plan_cache_.Clear();
  }
  bool verify_enabled() const { return compiler_.verify_enabled(); }

  /// Arms the compiler's intentional fusion miscompile (mutation self-test)
  /// and drops cached plans so it takes effect immediately. Test-only; not
  /// thread-safe.
  void set_fusion_mutation_for_test(plan::FusionMutation mutation) {
    compiler_.set_fusion_mutation_for_test(mutation);
    plan_cache_.Clear();
  }

  /// Diagnostics the verify gate emitted while rejecting fusions (drains).
  std::vector<Diagnostic> TakeVerifyDiagnostics() {
    return compiler_.TakeVerifyDiagnostics();
  }

  /// The plan compiler, for catalog-wide verification (VerifyGenealogy)
  /// and other read-only consumers.
  const plan::PlanCompiler& compiler() const { return compiler_; }

  /// Optional derived-view cache — the paper's future-work item (4),
  /// "optimized delta code": full scans of virtual table versions are
  /// memoized together with a dependency fingerprint (the name and dirty
  /// epoch of every physical table the derivation can read). Entries
  /// validate in O(path length) against the current epochs, writes
  /// invalidate only the entries whose derivation path shares a physical
  /// table with the write's propagation chain, and migrations invalidate
  /// only the versions whose access path passes through a flipped SMO
  /// instance (via the catalog's reachability index). Off by default (the
  /// paper's prototype recomputes views per query, which is what the
  /// figures measure); see bench/ablation_view_cache.
  void set_cache_enabled(bool enabled) { cache_enabled_ = enabled; }
  bool cache_enabled() const { return cache_enabled_; }

  /// How the cache reacts to writes and migrations. kClearAll reproduces
  /// the original stub (drop every entry on any write or migration) and
  /// exists for the ablation benchmark; kGenealogy is the default.
  enum class CacheMode { kClearAll, kGenealogy };
  void set_cache_mode(CacheMode mode) { cache_mode_ = mode; }
  CacheMode cache_mode() const { return cache_mode_; }

  /// Drops all cached derived views regardless of mode (schema drops and
  /// explicit resets).
  void InvalidateCache();

  /// Genealogy-scoped invalidation after the materialization state of the
  /// `flipped` SMO instances changed: drops exactly the cached versions
  /// whose access path can pass through one of them. Called by the
  /// migration operation.
  void InvalidateForMigration(const std::set<SmoId>& flipped);

  /// Migration write capture (docs/migration.md): when an observer is
  /// installed — always under the facade's exclusive DDL lock — every
  /// top-level ApplyToVersion reports its write set after the data landed,
  /// while the writer still holds the shared catalog lock. That ordering is
  /// what makes the coordinator's delta log complete: a backfill derivation
  /// that read pre-write data either finds the key queued for replay or is
  /// followed by the key (re)entering the log.
  void set_write_observer(migrate::WriteObserver* observer) {
    write_observer_.store(observer, std::memory_order_release);
  }

  /// Compiles the plan of every live table version under the current
  /// materialization epoch into the plan cache. The migration flip calls
  /// this inside its exclusive window (the dual-plan epoch window): the old
  /// epoch's plans serve until the flip, and the first post-flip access of
  /// each version hits a warm cache. Returns the first compile error.
  Status PrewarmPlans();

  /// Per-table-version cache statistics (returned by value: a snapshot).
  struct VersionCacheStats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t invalidations = 0;
  };
  std::map<TvId, VersionCacheStats> cache_stats() const {
    std::lock_guard<std::mutex> lock(cache_mu_);
    return cache_stats_;
  }

  /// The trace of the calling thread's most recent top-level write
  /// propagation: the table versions it traversed and the physical tables
  /// it may have touched. Thread-local, so concurrent clients never see
  /// each other's traces.
  const WriteTrace& last_write_trace() const { return last_trace_; }

  /// Per-table-version operation counters — the advisor's lifetime
  /// workload signal: top-level reads (scan/find) and writes (apply) per
  /// TvId since startup or the last ResetMetrics. Always on (one relaxed
  /// fetch_add per top-level operation); table versions beyond
  /// kMaxProfiledTvs go uncounted. Returns (reads, writes) per TvId,
  /// zero-count versions omitted.
  std::map<TvId, std::pair<int64_t, int64_t>> AccessProfile() const;
  void ResetAccessProfile();

 private:
  /// A plan resolved for one operation: a pointer into the plan cache, or
  /// (plan cache disabled) a freshly compiled shallow plan owned by the
  /// handle so that recursive accesses never clobber each other.
  struct PlanHandle {
    const plan::TvPlan* get() const { return owned ? owned.get() : cached; }
    const plan::TvPlan* cached = nullptr;
    std::unique_ptr<plan::TvPlan> owned;
  };
  Result<PlanHandle> ResolvePlan(TvId tv);

  /// The body of ApplyToVersion; the public entry point wraps it with the
  /// migration write-capture hook so every exit path reports exactly once.
  Status ApplyToVersionImpl(TvId tv, const WriteSet& writes);

  /// Latches the operation's physical footprint at the top level of an
  /// access (a no-op when the calling thread is already inside one — kernel
  /// recursion runs under the enclosing latch set). Pure reads of full
  /// plans take shared latches on the footprint; writes and plans whose
  /// Derive mutates id state take them exclusively; shallow plans (plan
  /// cache disabled) have no footprint and fall back to the whole-database
  /// latch.
  void AcquireLatches(TableLatchSet* latches, const plan::TvPlan& p,
                      bool write, bool timed);

  /// Key-scoped variant for operations on a *physical* single-table plan:
  /// with a sharded store, latches only the shards `keys` route to, so
  /// writers hitting different shards of the same data table run in
  /// parallel. Falls back to AcquireLatches whenever key-scoping does not
  /// apply (virtual plan, shallow plan, unsharded registry, plans whose
  /// footprint is wider than the data table).
  void AcquireLatchesForKeys(TableLatchSet* latches, const plan::TvPlan& p,
                             const std::vector<int64_t>& keys, bool write,
                             bool timed);

  /// True when AcquireLatchesForKeys would actually key-scope for plan `p`
  /// (callers check this before materializing a key vector, so the
  /// unsharded hot path never allocates).
  bool KeyScopedEligible(const plan::TvPlan& p) const;

  /// Dependency fingerprint: physical table name -> dirty epoch at
  /// derivation time (aliased because commas in template ids break the
  /// ASSIGN_OR_RETURN macro).
  using DepVec = std::vector<std::pair<std::string, uint64_t>>;

  /// The plan's footprint stamped with the current dirty epochs (compiling
  /// the full footprint on demand when handed a shallow plan).
  Result<DepVec> FootprintDeps(const plan::TvPlan& p);

  /// One memoized derived view plus its dependency fingerprint: the name
  /// and dirty epoch of every physical table (data and auxiliary) the
  /// derivation can read under the materialization it was built in. The
  /// entry is valid iff every epoch still matches. The view is shared so a
  /// returned table survives a concurrent eviction.
  struct CacheEntry {
    std::shared_ptr<const Table> table;
    DepVec deps;
  };

  /// Validated lookup: returns the cached view of `tv` if its fingerprint
  /// still matches, dropping the entry (and counting an invalidation)
  /// otherwise. Every lookup is accounted as exactly one hit or one miss
  /// through RecordCacheLookupLocked — the single accounting point for the
  /// aggregate and per-version counters.
  std::shared_ptr<const Table> LookupCache(TvId tv);
  Status StoreCache(const plan::TvPlan& p, Table table);
  void RecordCacheLookupLocked(TvId tv, bool hit);  // requires cache_mu_

  /// Eager scoped invalidation before a write propagates along plan `p`:
  /// drops the entries whose fingerprint intersects the write's possible
  /// footprint, using the genealogy component as a cheap pre-filter.
  Status InvalidateForWrite(const plan::TvPlan& p);
  void EraseCacheEntry(TvId tv);
  void EraseCacheEntryLocked(TvId tv);  // requires cache_mu_ held

  /// Internal accounting behind the registry's view_cache pull-source and
  /// its reset hook. The public surface is Inverda::Metrics() /
  /// Inverda::ResetMetrics() (docs/observability.md); the per-PR-5
  /// deprecated public shims are gone.
  void ResetCacheStats();
  int64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  int64_t cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }
  int64_t cache_invalidations() const {
    return cache_invalidations_.load(std::memory_order_relaxed);
  }
  int64_t cache_size() const {
    std::lock_guard<std::mutex> lock(cache_mu_);
    return static_cast<int64_t>(cache_.size());
  }

  /// Per-kernel latency/row metrics, resolved from the kernel's stable
  /// singleton pointer through a small lock-free slot array (the mutex is
  /// only taken once per distinct kernel, to register it). Returns nullptr
  /// past kMaxKernels distinct kernels (such a kernel goes unmetered).
  struct KernelMetrics {
    obs::Histogram* derive_ns = nullptr;
    obs::Histogram* propagate_ns = nullptr;
    obs::Counter* derive_rows = nullptr;
  };
  KernelMetrics* MetricsForKernel(const Kernel* kernel);

  VersionCatalog* catalog_;
  Database* db_;

  obs::Observability* obs_;
  // Hot-path metric pointers, cached once at construction.
  obs::Histogram* scan_ns_;
  obs::Histogram* find_ns_;
  obs::Histogram* apply_ns_;
  obs::Histogram* latch_ns_;
  obs::Counter* latch_fine_;
  obs::Counter* latch_escalations_;
  obs::Counter* latch_global_;
  obs::Counter* latch_key_scoped_;
  // Shard-parallel executor counters, bumped when a fan-out actually runs.
  obs::Counter* parallel_scans_;
  obs::Counter* parallel_applies_;

  static constexpr size_t kMaxKernels = 16;
  struct KernelSlot {
    std::atomic<const Kernel*> kernel{nullptr};
    KernelMetrics metrics;
  };
  std::array<KernelSlot, kMaxKernels> kernel_slots_;
  std::mutex kernel_slots_mu_;  // serializes slot registration only

  /// Per-version access counters, indexed directly by TvId (ids are small
  /// and dense — the catalog hands them out sequentially). Lock-free on
  /// the hot path: one relaxed fetch_add at the top level of an access.
  static constexpr int kMaxProfiledTvs = 256;
  struct TvAccessSlot {
    std::atomic<int64_t> reads{0};
    std::atomic<int64_t> writes{0};
  };
  std::array<TvAccessSlot, kMaxProfiledTvs> tv_access_;
  void CountAccess(TvId tv, bool write) {
    if (access_depth_ != 0) return;  // kernel recursion is one client op
    if (tv < 0 || tv >= kMaxProfiledTvs) return;
    TvAccessSlot& slot = tv_access_[static_cast<size_t>(tv)];
    (write ? slot.writes : slot.reads).fetch_add(1, std::memory_order_relaxed);
  }

  plan::PlanCompiler compiler_;
  plan::PlanCache plan_cache_;
  bool plan_cache_enabled_ = true;
  bool batch_enabled_ = true;

  bool cache_enabled_ = false;
  CacheMode cache_mode_ = CacheMode::kGenealogy;
  // Guards cache_ and cache_stats_. Never held while deriving or latching;
  // FootprintDeps runs before the lock is taken.
  mutable std::mutex cache_mu_;
  std::map<TvId, CacheEntry> cache_;
  std::map<TvId, VersionCacheStats> cache_stats_;
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> cache_misses_{0};
  std::atomic<int64_t> cache_invalidations_{0};
  // Migration write-capture sink; null outside an active migration.
  std::atomic<migrate::WriteObserver*> write_observer_{nullptr};
  // Recursion depth of the calling thread across ScanVersion / FindVersion
  // / ApplyToVersion: latches are taken and the write trace collected only
  // at the top level of an access chain.
  static thread_local int access_depth_;
  static thread_local WriteTrace last_trace_;
};

/// One materialization request — the single argument of the unified
/// Materialize entry point. Exactly one variant must be set: `targets`
/// (MATERIALIZE syntax, "Version" or "Version.table") or an explicit
/// materialization `schema` (SMO instance ids). `online` selects the
/// non-blocking coordinator path (docs/migration.md); `wait` (online only)
/// additionally blocks until the background migration reaches a terminal
/// phase and returns its terminal status. The blocking path is inherently
/// synchronous, so it ignores `wait`.
struct MaterializeRequest {
  std::vector<std::string> targets;
  std::optional<std::set<SmoId>> schema;
  bool online = false;
  bool wait = true;

  static MaterializeRequest Targets(std::vector<std::string> t,
                                    bool online = false, bool wait = true) {
    MaterializeRequest r;
    r.targets = std::move(t);
    r.online = online;
    r.wait = wait;
    return r;
  }
  static MaterializeRequest Schema(std::set<SmoId> m, bool online = false,
                                   bool wait = true) {
    MaterializeRequest r;
    r.schema = std::move(m);
    r.online = online;
    r.wait = wait;
    return r;
  }
};

/// The InVerDa facade: schema evolution (BiDEL), migration (MATERIALIZE),
/// and per-version data access against a single shared data set.
///
/// Thread-safe: any number of client threads may run the data-access
/// operations concurrently (each takes the catalog lock shared; actual
/// data conflicts are resolved by the access layer's per-table latches),
/// while the DDL operations — CreateSchemaVersion, DropSchemaVersion,
/// Materialize — take it exclusively, so every access observes the catalog
/// and its materialization epoch either entirely before or entirely after
/// a schema change, never a torn route. Introspection accessors (catalog(),
/// db(), access()) hand out unguarded references; use them from a single
/// thread or during quiesce.
class Inverda {
 public:
  /// `shards` <= 0 takes the process default (INVERDA_SHARDS, else 1): the
  /// number of hash-partitioned shards every physical table splits its rows
  /// into (docs/storage.md). One shard is the pre-sharding engine, bit for
  /// bit.
  explicit Inverda(int shards = 0);

  Inverda(const Inverda&) = delete;
  Inverda& operator=(const Inverda&) = delete;

  // --- developer interface --------------------------------------------------

  /// Parses and executes a BiDEL script: any number of CREATE SCHEMA
  /// VERSION / DROP SCHEMA VERSION / MATERIALIZE statements.
  Status Execute(const std::string& bidel_script);

  /// The Database Evolution Operation: registers the evolution and creates
  /// all physical tables and delta code state. The new schema version is
  /// immediately readable and writable.
  Status CreateSchemaVersion(const EvolutionStatement& stmt);

  Status DropSchemaVersion(const std::string& name);

  // --- DBA interface ---------------------------------------------------------

  /// The Database Migration Operation, unified entry point: moves the
  /// physical data so the requested targets (or the explicit schema) are
  /// physically stored, migrates auxiliary state, and drops stale physical
  /// tables. Blocking by default (exclusive DDL lock, all-or-nothing with
  /// rollback on failure); `request.online` runs it through the background
  /// MigrationCoordinator instead — readers and writers keep running while
  /// the coordinator backfills chunk-by-chunk and replays concurrently
  /// captured writes, and the commit is a brief exclusive epoch flip.
  /// While a migration is active all other DDL (evolution, drops, blocking
  /// MATERIALIZE, Reshard, a second online migration) is rejected with
  /// InvalidState.
  Status Materialize(const MaterializeRequest& request);

  /// Deprecated pre-unification spellings; one-PR shims over
  /// Materialize(MaterializeRequest).
  [[deprecated("use Materialize(const MaterializeRequest&)")]]
  Status Materialize(const std::vector<std::string>& targets);
  [[deprecated("use Materialize(MaterializeRequest::Schema(m))")]]
  Status MaterializeSchema(const std::set<SmoId>& m);
  [[deprecated("use Materialize(MaterializeRequest::Targets(t, true, false))")]]
  Status MaterializeOnline(const std::vector<std::string>& targets);
  [[deprecated("use Materialize(MaterializeRequest::Schema(m, true, false))")]]
  Status MaterializeSchemaOnline(const std::set<SmoId>& m);

  // --- online migration (docs/migration.md) ----------------------------------

  /// Blocks until no migration is active; returns the terminal status of
  /// the last migration (OK when none ran or it committed).
  Status WaitForMigration();

  /// Requests abort of the active migration and waits for the unwind; the
  /// live database and the plan-cache epoch come back untouched. OK when
  /// the migration ended aborted or had already committed.
  Status AbortMigration();

  /// Progress snapshot of the migration coordinator (shell MIGRATIONS).
  migrate::MigrationStatus MigrationState() const { return migrate_.Snapshot(); }

  /// Fault-injection/pacing hooks for the migration test battery.
  void set_migration_test_hooks(migrate::TestHooks hooks) {
    migrate_.set_test_hooks(std::move(hooks));
  }

  // --- materialization advisor (docs/advisor.md) ------------------------------

  /// Profiles the observed workload (or explicit weights), prices every
  /// valid materialization schema through the cost model, and returns the
  /// ranked report. Runs under the shared catalog lock, concurrently with
  /// client traffic.
  Result<advisor::AdviseReport> Advise(
      const advisor::AdviseOptions& options = {}) {
    return advisor_.Recommend(options);
  }

  /// The advisor subsystem itself: auto-materialize knobs
  /// (set_auto_materialize_enabled, threshold, cooldown) and AutoTick.
  advisor::Advisor& advisor() { return advisor_; }
  const advisor::Advisor& advisor() const { return advisor_; }

  // --- data access -----------------------------------------------------------

  /// Full scan of `table` as visible in schema version `version`.
  Result<std::vector<KeyedRow>> Select(const std::string& version,
                                       const std::string& table);

  /// Scan with a predicate over the version's payload columns.
  Result<std::vector<KeyedRow>> SelectWhere(const std::string& version,
                                            const std::string& table,
                                            const Expression& predicate);

  /// Point lookup by the InVerDa-managed key.
  Result<std::optional<Row>> Get(const std::string& version,
                                 const std::string& table, int64_t key);

  /// Inserts a row; the key is drawn from the global sequence and returned.
  Result<int64_t> Insert(const std::string& version, const std::string& table,
                         Row row);

  Status Update(const std::string& version, const std::string& table,
                int64_t key, Row row);
  Status Delete(const std::string& version, const std::string& table,
                int64_t key);

  /// Updates all rows matching `predicate` with `make_row(old)`; returns the
  /// number of affected rows.
  Result<int64_t> UpdateWhere(const std::string& version,
                              const std::string& table,
                              const Expression& predicate,
                              const std::function<Row(const Row&)>& make_row);

  /// Deletes all rows matching `predicate`; returns the number deleted.
  Result<int64_t> DeleteWhere(const std::string& version,
                              const std::string& table,
                              const Expression& predicate);

  // --- introspection ----------------------------------------------------------

  const VersionCatalog& catalog() const { return catalog_; }
  VersionCatalog& catalog() { return catalog_; }
  Database& db() { return db_; }
  AccessLayer& access() { return access_; }

  /// The active shard count of the physical store.
  int shards() const { return db_.shards(); }

  /// Re-partitions every physical table into `shards` shards (clamped to
  /// [1, kMaxShards]). Takes the DDL-exclusive lock, so it never races
  /// with data access; content, plans and footprints are unchanged.
  Status Reshard(int shards);

  // --- observability ---------------------------------------------------------

  /// The unified stats surface (docs/observability.md): every component's
  /// counters and latency histograms — plan cache, view cache, compiler,
  /// latches, per-kernel timings, tracer — in one registry. Safe to
  /// snapshot concurrently with client traffic. Replaces the scattered
  /// per-component accessors (plan_stats / cache_hits / ... on the access
  /// layer), which remain as deprecated shims for one PR.
  obs::MetricsRegistry& Metrics() { return obs_.metrics; }
  const obs::MetricsRegistry& Metrics() const { return obs_.metrics; }

  /// The single reset point: zeroes every push metric and invokes every
  /// component's reset hook (plan-cache stats, view-cache stats).
  /// Monotonic sources (compiler walk counters, trace.completed) keep
  /// their values. Replaces ResetPlanStats() + ResetCacheStats().
  void ResetMetrics() { obs_.metrics.Reset(); }

  /// Per-operation access tracing (TRACE ON|OFF|LAST in the shell). Off by
  /// default; toggling is safe while clients run.
  obs::Tracer& tracer() { return obs_.tracer; }
  const obs::Tracer& tracer() const { return obs_.tracer; }

  obs::Observability& observability() { return obs_; }

  /// Statically verifies every compiled plan of the current genealogy
  /// (verify/verifier.h): GetPut/PutGet round-trip obligations per hop,
  /// translation validation of fused steps, and the cross-plan lock-order
  /// analysis. Runs under the shared catalog lock, so it can execute
  /// concurrently with client traffic; fails only on compile errors —
  /// verification findings come back as diagnostics in the summary.
  Result<verify::VerifySummary> VerifyPlans(
      const verify::VerifyOptions& options = {});

  /// The payload schema of `table` in `version`.
  Result<TableSchema> GetSchema(const std::string& version,
                                const std::string& table);

 private:
  friend class AccessLayer;
  friend class migrate::MigrationCoordinator;
  friend class advisor::Advisor;

  // Creates the physical tables required by a freshly registered SMO
  // instance (data tables of physically-stored targets + aux tables of the
  // initial state).
  Status ProvisionSmo(SmoId id);

  Result<TvId> Resolve(const std::string& version, const std::string& table);

  // Bodies of the public operations that other operations call internally;
  // they assume the caller already holds catalog_mu_ (shared_mutex is not
  // recursive, so the public wrappers must not re-enter each other).
  Result<std::vector<KeyedRow>> SelectWhereLocked(const std::string& version,
                                                  const std::string& table,
                                                  const Expression& predicate);
  Status MaterializeLocked(const std::vector<std::string>& targets);
  Status MaterializeSchemaLocked(const std::set<SmoId>& m);

  /// Resolves MATERIALIZE targets ("Version" or "Version.table") to the
  /// materialization schema they imply (shared by the blocking and online
  /// paths; requires catalog_mu_).
  Result<std::set<SmoId>> ResolveMaterializationLocked(
      const std::vector<std::string>& targets);

  /// InvalidState while an online migration is active; DDL callers check
  /// this after taking the exclusive lock.
  Status CheckNoActiveMigration() const;

  // The DDL/DML boundary: shared for data access, exclusive for schema
  // evolution, migration, and version drops.
  mutable std::shared_mutex catalog_mu_;

  VersionCatalog catalog_;
  Database db_;
  // Declared before access_: the access layer caches registry pointers and
  // registers pull-sources in its constructor, and those sources must
  // outlive it on destruction (members destroy in reverse order).
  obs::Observability obs_;
  AccessLayer access_;
  // No background thread of its own; evaluations run on whichever client
  // thread crosses the check interval (after releasing its shared lock).
  advisor::Advisor advisor_;
  // Declared last: destroys first, joining any in-flight migration worker
  // while the catalog, storage, access layer and advisor are still alive.
  migrate::MigrationCoordinator migrate_;
};

}  // namespace inverda

#endif  // INVERDA_INVERDA_INVERDA_H_
