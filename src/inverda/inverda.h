#ifndef INVERDA_INVERDA_INVERDA_H_
#define INVERDA_INVERDA_INVERDA_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "expr/expression.h"
#include "mapping/side.h"
#include "storage/database.h"
#include "util/status.h"

namespace inverda {

class Inverda;

/// Implements AccessBackend on top of the catalog and physical storage: it
/// is the executable form of the generated delta code. Reads resolve along
/// the schema genealogy (Figure 6's three cases); writes are propagated
/// SMO-by-SMO toward the physical side by the mapping kernels.
class AccessLayer : public AccessBackend {
 public:
  AccessLayer(VersionCatalog* catalog, Database* db)
      : catalog_(catalog), db_(db) {}

  Status ScanVersion(TvId tv, const RowCallback& fn) override;
  Result<std::optional<Row>> FindVersion(TvId tv, int64_t key) override;
  Status ApplyToVersion(TvId tv, const WriteSet& writes) override;
  Database& db() override { return *db_; }

  /// Builds the execution context of one SMO instance under the current
  /// materialization.
  Result<SmoContext> BuildContext(SmoId id);

  /// Number of SMO instances a read/write of `tv` is propagated through
  /// before reaching physical data (0 when physical).
  Result<int> PropagationDistance(TvId tv);

  /// Optional derived-view cache — the paper's future-work item (4),
  /// "optimized delta code": full scans of virtual table versions are
  /// memoized together with a dependency fingerprint (the name and dirty
  /// epoch of every physical table the derivation can read). Entries
  /// validate in O(path length) against the current epochs, writes
  /// invalidate only the entries whose derivation path shares a physical
  /// table with the write's propagation chain, and migrations invalidate
  /// only the versions whose access path passes through a flipped SMO
  /// instance (via the catalog's reachability index). Off by default (the
  /// paper's prototype recomputes views per query, which is what the
  /// figures measure); see bench/ablation_view_cache.
  void set_cache_enabled(bool enabled) { cache_enabled_ = enabled; }
  bool cache_enabled() const { return cache_enabled_; }

  /// How the cache reacts to writes and migrations. kClearAll reproduces
  /// the original stub (drop every entry on any write or migration) and
  /// exists for the ablation benchmark; kGenealogy is the default.
  enum class CacheMode { kClearAll, kGenealogy };
  void set_cache_mode(CacheMode mode) { cache_mode_ = mode; }
  CacheMode cache_mode() const { return cache_mode_; }

  /// Drops all cached derived views regardless of mode (schema drops and
  /// explicit resets).
  void InvalidateCache();

  /// Genealogy-scoped invalidation after the materialization state of the
  /// `flipped` SMO instances changed: drops exactly the cached versions
  /// whose access path can pass through one of them. Called by the
  /// migration operation.
  void InvalidateForMigration(const std::set<SmoId>& flipped);

  /// Resets the hit/miss/invalidation counters without touching cached
  /// entries, so ablation phases measure independently.
  void ResetCacheStats();

  /// Aggregate cache statistics for the ablation benchmark.
  int64_t cache_hits() const { return cache_hits_; }
  int64_t cache_misses() const { return cache_misses_; }
  int64_t cache_invalidations() const { return cache_invalidations_; }
  int64_t cache_size() const { return static_cast<int64_t>(cache_.size()); }

  /// Per-table-version cache statistics.
  struct VersionCacheStats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t invalidations = 0;
  };
  const std::map<TvId, VersionCacheStats>& cache_stats() const {
    return cache_stats_;
  }

  /// The trace of the most recent top-level write propagation: the table
  /// versions it traversed and the physical tables it may have touched.
  const WriteTrace& last_write_trace() const { return last_trace_; }

 private:
  // How accesses to a non-physical table version reach the data:
  // kForward through an outgoing materialized SMO, kBackward through the
  // (virtualized) incoming SMO.
  struct Route {
    SmoId smo = -1;
    SmoSide side = SmoSide::kSource;  // the side `tv` is on for that SMO
    int index = 0;                    // position of tv within that side
  };
  Result<std::optional<Route>> ResolveRoute(TvId tv);

  /// Dependency fingerprint: physical table name -> dirty epoch at
  /// derivation time (aliased because commas in template ids break the
  /// ASSIGN_OR_RETURN macro).
  using DepVec = std::vector<std::pair<std::string, uint64_t>>;

  /// One memoized derived view plus its dependency fingerprint: the name
  /// and dirty epoch of every physical table (data and auxiliary) the
  /// derivation can read under the materialization it was built in. The
  /// entry is valid iff every epoch still matches.
  struct CacheEntry {
    Table table;
    DepVec deps;
  };

  /// The physical tables a read or write of `tv` can reach: the data
  /// tables of the physical table versions its route resolves to plus the
  /// auxiliary tables of every traversed SMO instance, with their current
  /// epochs. Reads depend on exactly this set; writes touch a subset of it.
  Result<DepVec> CollectDeps(TvId tv);

  /// Validated lookup: returns the cached view of `tv` if its fingerprint
  /// still matches, dropping the entry (and counting an invalidation)
  /// otherwise.
  const Table* LookupCache(TvId tv);
  Status StoreCache(TvId tv, Table table);

  /// Eager scoped invalidation before a write propagates from `tv`: drops
  /// the entries whose fingerprint intersects the write's possible
  /// footprint, using the genealogy component as a cheap pre-filter.
  Status InvalidateForWrite(TvId tv);
  void EraseCacheEntry(TvId tv);

  VersionCatalog* catalog_;
  Database* db_;

  bool cache_enabled_ = false;
  CacheMode cache_mode_ = CacheMode::kGenealogy;
  std::map<TvId, CacheEntry> cache_;
  std::map<TvId, VersionCacheStats> cache_stats_;
  int64_t cache_hits_ = 0;
  int64_t cache_misses_ = 0;
  int64_t cache_invalidations_ = 0;
  // Recursion depth of ApplyToVersion: invalidation and trace collection
  // happen only at the top level of a propagation chain.
  int propagate_depth_ = 0;
  WriteTrace last_trace_;
};

/// The InVerDa facade: schema evolution (BiDEL), migration (MATERIALIZE),
/// and per-version data access against a single shared data set.
class Inverda {
 public:
  Inverda();

  Inverda(const Inverda&) = delete;
  Inverda& operator=(const Inverda&) = delete;

  // --- developer interface --------------------------------------------------

  /// Parses and executes a BiDEL script: any number of CREATE SCHEMA
  /// VERSION / DROP SCHEMA VERSION / MATERIALIZE statements.
  Status Execute(const std::string& bidel_script);

  /// The Database Evolution Operation: registers the evolution and creates
  /// all physical tables and delta code state. The new schema version is
  /// immediately readable and writable.
  Status CreateSchemaVersion(const EvolutionStatement& stmt);

  Status DropSchemaVersion(const std::string& name);

  // --- DBA interface ---------------------------------------------------------

  /// The Database Migration Operation: moves the physical data so that the
  /// listed targets ("Version" or "Version.table") are physically stored,
  /// migrates data and auxiliary state, and drops stale physical tables.
  /// All-or-nothing: restores the previous state on failure.
  Status Materialize(const std::vector<std::string>& targets);

  /// Applies an explicit materialization schema (by SMO instance ids).
  Status MaterializeSchema(const std::set<SmoId>& m);

  // --- data access -----------------------------------------------------------

  /// Full scan of `table` as visible in schema version `version`.
  Result<std::vector<KeyedRow>> Select(const std::string& version,
                                       const std::string& table);

  /// Scan with a predicate over the version's payload columns.
  Result<std::vector<KeyedRow>> SelectWhere(const std::string& version,
                                            const std::string& table,
                                            const Expression& predicate);

  /// Point lookup by the InVerDa-managed key.
  Result<std::optional<Row>> Get(const std::string& version,
                                 const std::string& table, int64_t key);

  /// Inserts a row; the key is drawn from the global sequence and returned.
  Result<int64_t> Insert(const std::string& version, const std::string& table,
                         Row row);

  Status Update(const std::string& version, const std::string& table,
                int64_t key, Row row);
  Status Delete(const std::string& version, const std::string& table,
                int64_t key);

  /// Updates all rows matching `predicate` with `make_row(old)`; returns the
  /// number of affected rows.
  Result<int64_t> UpdateWhere(const std::string& version,
                              const std::string& table,
                              const Expression& predicate,
                              const std::function<Row(const Row&)>& make_row);

  /// Deletes all rows matching `predicate`; returns the number deleted.
  Result<int64_t> DeleteWhere(const std::string& version,
                              const std::string& table,
                              const Expression& predicate);

  // --- introspection ----------------------------------------------------------

  const VersionCatalog& catalog() const { return catalog_; }
  VersionCatalog& catalog() { return catalog_; }
  Database& db() { return db_; }
  AccessLayer& access() { return access_; }

  /// The payload schema of `table` in `version`.
  Result<TableSchema> GetSchema(const std::string& version,
                                const std::string& table);

 private:
  friend class AccessLayer;

  // Creates the physical tables required by a freshly registered SMO
  // instance (data tables of physically-stored targets + aux tables of the
  // initial state).
  Status ProvisionSmo(SmoId id);

  Result<TvId> Resolve(const std::string& version, const std::string& table);

  VersionCatalog catalog_;
  Database db_;
  AccessLayer access_;
};

}  // namespace inverda

#endif  // INVERDA_INVERDA_INVERDA_H_
