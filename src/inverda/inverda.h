#ifndef INVERDA_INVERDA_INVERDA_H_
#define INVERDA_INVERDA_INVERDA_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "expr/expression.h"
#include "mapping/side.h"
#include "storage/database.h"
#include "util/status.h"

namespace inverda {

class Inverda;

/// Implements AccessBackend on top of the catalog and physical storage: it
/// is the executable form of the generated delta code. Reads resolve along
/// the schema genealogy (Figure 6's three cases); writes are propagated
/// SMO-by-SMO toward the physical side by the mapping kernels.
class AccessLayer : public AccessBackend {
 public:
  AccessLayer(VersionCatalog* catalog, Database* db)
      : catalog_(catalog), db_(db) {}

  Status ScanVersion(TvId tv, const RowCallback& fn) override;
  Result<std::optional<Row>> FindVersion(TvId tv, int64_t key) override;
  Status ApplyToVersion(TvId tv, const WriteSet& writes) override;
  Database& db() override { return *db_; }

  /// Builds the execution context of one SMO instance under the current
  /// materialization.
  Result<SmoContext> BuildContext(SmoId id);

  /// Number of SMO instances a read/write of `tv` is propagated through
  /// before reaching physical data (0 when physical).
  Result<int> PropagationDistance(TvId tv);

  /// Optional derived-view cache — the paper's future-work item (4),
  /// "optimized delta code": full scans of virtual table versions are
  /// memoized and invalidated on any write or migration. Off by default
  /// (the paper's prototype recomputes views per query, which is what the
  /// figures measure); see bench/ablation_view_cache.
  void set_cache_enabled(bool enabled) {
    cache_enabled_ = enabled;
    cache_.clear();
  }
  bool cache_enabled() const { return cache_enabled_; }

  /// Drops all cached derived views (called on every write and migration).
  void InvalidateCache() { cache_.clear(); }

  /// Cache statistics for the ablation benchmark.
  int64_t cache_hits() const { return cache_hits_; }
  int64_t cache_misses() const { return cache_misses_; }

 private:
  // How accesses to a non-physical table version reach the data:
  // kForward through an outgoing materialized SMO, kBackward through the
  // (virtualized) incoming SMO.
  struct Route {
    SmoId smo = -1;
    SmoSide side = SmoSide::kSource;  // the side `tv` is on for that SMO
    int index = 0;                    // position of tv within that side
  };
  Result<std::optional<Route>> ResolveRoute(TvId tv);

  VersionCatalog* catalog_;
  Database* db_;

  bool cache_enabled_ = false;
  std::map<TvId, Table> cache_;
  int64_t cache_hits_ = 0;
  int64_t cache_misses_ = 0;
};

/// The InVerDa facade: schema evolution (BiDEL), migration (MATERIALIZE),
/// and per-version data access against a single shared data set.
class Inverda {
 public:
  Inverda();

  Inverda(const Inverda&) = delete;
  Inverda& operator=(const Inverda&) = delete;

  // --- developer interface --------------------------------------------------

  /// Parses and executes a BiDEL script: any number of CREATE SCHEMA
  /// VERSION / DROP SCHEMA VERSION / MATERIALIZE statements.
  Status Execute(const std::string& bidel_script);

  /// The Database Evolution Operation: registers the evolution and creates
  /// all physical tables and delta code state. The new schema version is
  /// immediately readable and writable.
  Status CreateSchemaVersion(const EvolutionStatement& stmt);

  Status DropSchemaVersion(const std::string& name);

  // --- DBA interface ---------------------------------------------------------

  /// The Database Migration Operation: moves the physical data so that the
  /// listed targets ("Version" or "Version.table") are physically stored,
  /// migrates data and auxiliary state, and drops stale physical tables.
  /// All-or-nothing: restores the previous state on failure.
  Status Materialize(const std::vector<std::string>& targets);

  /// Applies an explicit materialization schema (by SMO instance ids).
  Status MaterializeSchema(const std::set<SmoId>& m);

  // --- data access -----------------------------------------------------------

  /// Full scan of `table` as visible in schema version `version`.
  Result<std::vector<KeyedRow>> Select(const std::string& version,
                                       const std::string& table);

  /// Scan with a predicate over the version's payload columns.
  Result<std::vector<KeyedRow>> SelectWhere(const std::string& version,
                                            const std::string& table,
                                            const Expression& predicate);

  /// Point lookup by the InVerDa-managed key.
  Result<std::optional<Row>> Get(const std::string& version,
                                 const std::string& table, int64_t key);

  /// Inserts a row; the key is drawn from the global sequence and returned.
  Result<int64_t> Insert(const std::string& version, const std::string& table,
                         Row row);

  Status Update(const std::string& version, const std::string& table,
                int64_t key, Row row);
  Status Delete(const std::string& version, const std::string& table,
                int64_t key);

  /// Updates all rows matching `predicate` with `make_row(old)`; returns the
  /// number of affected rows.
  Result<int64_t> UpdateWhere(const std::string& version,
                              const std::string& table,
                              const Expression& predicate,
                              const std::function<Row(const Row&)>& make_row);

  /// Deletes all rows matching `predicate`; returns the number deleted.
  Result<int64_t> DeleteWhere(const std::string& version,
                              const std::string& table,
                              const Expression& predicate);

  // --- introspection ----------------------------------------------------------

  const VersionCatalog& catalog() const { return catalog_; }
  VersionCatalog& catalog() { return catalog_; }
  Database& db() { return db_; }
  AccessLayer& access() { return access_; }

  /// The payload schema of `table` in `version`.
  Result<TableSchema> GetSchema(const std::string& version,
                                const std::string& table);

 private:
  friend class AccessLayer;

  // Creates the physical tables required by a freshly registered SMO
  // instance (data tables of physically-stored targets + aux tables of the
  // initial state).
  Status ProvisionSmo(SmoId id);

  Result<TvId> Resolve(const std::string& version, const std::string& table);

  VersionCatalog catalog_;
  Database db_;
  AccessLayer access_;
};

}  // namespace inverda

#endif  // INVERDA_INVERDA_INVERDA_H_
