#include "expr/parser.h"

#include <cctype>
#include <vector>

#include "util/strings.h"

namespace inverda {
namespace {

enum class TokenKind {
  kIdent,
  kNumber,
  kString,
  kOperator,  // = <> != <= >= < > + - * / % || ( ) ,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          ++pos_;
        }
        tokens.push_back({TokenKind::kIdent, text_.substr(start, pos_ - start)});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t start = pos_;
        bool is_double = false;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.')) {
          if (text_[pos_] == '.') is_double = true;
          ++pos_;
        }
        (void)is_double;
        tokens.push_back(
            {TokenKind::kNumber, text_.substr(start, pos_ - start)});
        continue;
      }
      if (c == '\'') {
        ++pos_;
        std::string value;
        bool closed = false;
        while (pos_ < text_.size()) {
          if (text_[pos_] == '\'') {
            if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '\'') {
              value += '\'';
              pos_ += 2;
              continue;
            }
            ++pos_;
            closed = true;
            break;
          }
          value += text_[pos_++];
        }
        if (!closed) {
          return Status::InvalidArgument("unterminated string literal in: " +
                                         text_);
        }
        tokens.push_back({TokenKind::kString, std::move(value)});
        continue;
      }
      // Two-character operators first.
      static const char* kTwoChar[] = {"<>", "!=", "<=", ">=", "||"};
      bool matched = false;
      for (const char* op : kTwoChar) {
        if (text_.compare(pos_, 2, op) == 0) {
          tokens.push_back({TokenKind::kOperator, op});
          pos_ += 2;
          matched = true;
          break;
        }
      }
      if (matched) continue;
      static const std::string kOneChar = "=<>+-*/%(),";
      if (kOneChar.find(c) != std::string::npos) {
        tokens.push_back({TokenKind::kOperator, std::string(1, c)});
        ++pos_;
        continue;
      }
      return Status::InvalidArgument(std::string("unexpected character '") +
                                     c + "' in: " + text_);
    }
    tokens.push_back({TokenKind::kEnd, ""});
    return tokens;
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ExprPtr> Parse() {
    INVERDA_ASSIGN_OR_RETURN(ExprPtr expr, ParseOr());
    if (Peek().kind != TokenKind::kEnd) {
      return Status::InvalidArgument("trailing input after expression: " +
                                     Peek().text);
    }
    return expr;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  Token Advance() { return tokens_[pos_++]; }

  bool MatchKeyword(const char* kw) {
    if (Peek().kind == TokenKind::kIdent && EqualsIgnoreCase(Peek().text, kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool MatchOperator(const char* op) {
    if (Peek().kind == TokenKind::kOperator && Peek().text == op) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<ExprPtr> ParseOr() {
    INVERDA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (MatchKeyword("OR")) {
      INVERDA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeOr(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    INVERDA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (MatchKeyword("AND")) {
      INVERDA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = MakeAnd(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (MatchKeyword("NOT")) {
      INVERDA_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return MakeNot(std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    INVERDA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    if (MatchKeyword("IS")) {
      bool negated = MatchKeyword("NOT");
      if (!MatchKeyword("NULL")) {
        return Status::InvalidArgument("expected NULL after IS");
      }
      return MakeIsNull(std::move(lhs), negated);
    }
    struct OpEntry {
      const char* text;
      CompareOp op;
    };
    static constexpr OpEntry kOps[] = {
        {"=", CompareOp::kEq},  {"<>", CompareOp::kNe}, {"!=", CompareOp::kNe},
        {"<=", CompareOp::kLe}, {">=", CompareOp::kGe}, {"<", CompareOp::kLt},
        {">", CompareOp::kGt},
    };
    for (const OpEntry& e : kOps) {
      if (MatchOperator(e.text)) {
        INVERDA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        return MakeComparison(e.op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    INVERDA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      ArithOp op;
      if (MatchOperator("+")) {
        op = ArithOp::kAdd;
      } else if (MatchOperator("-")) {
        op = ArithOp::kSub;
      } else if (MatchOperator("||")) {
        op = ArithOp::kConcat;
      } else {
        break;
      }
      INVERDA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = MakeArith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    INVERDA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      ArithOp op;
      if (MatchOperator("*")) {
        op = ArithOp::kMul;
      } else if (MatchOperator("/")) {
        op = ArithOp::kDiv;
      } else if (MatchOperator("%")) {
        op = ArithOp::kMod;
      } else {
        break;
      }
      INVERDA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = MakeArith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (MatchOperator("-")) {
      INVERDA_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return MakeArith(ArithOp::kSub, MakeLiteral(Value::Int(0)),
                       std::move(operand));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token token = Advance();
    switch (token.kind) {
      case TokenKind::kNumber: {
        if (token.text.find('.') != std::string::npos) {
          return MakeLiteral(Value::Double(std::stod(token.text)));
        }
        return MakeLiteral(Value::Int(std::stoll(token.text)));
      }
      case TokenKind::kString:
        return MakeLiteral(Value::String(token.text));
      case TokenKind::kIdent: {
        if (EqualsIgnoreCase(token.text, "NULL")) {
          return MakeLiteral(Value::Null());
        }
        if (EqualsIgnoreCase(token.text, "TRUE")) {
          return MakeLiteral(Value::Bool(true));
        }
        if (EqualsIgnoreCase(token.text, "FALSE")) {
          return MakeLiteral(Value::Bool(false));
        }
        if (MatchOperator("(")) {
          std::vector<ExprPtr> args;
          if (!MatchOperator(")")) {
            while (true) {
              INVERDA_ASSIGN_OR_RETURN(ExprPtr arg, ParseOr());
              args.push_back(std::move(arg));
              if (MatchOperator(")")) break;
              if (!MatchOperator(",")) {
                return Status::InvalidArgument(
                    "expected ',' or ')' in argument list of " + token.text);
              }
            }
          }
          return MakeFunctionCall(token.text, std::move(args));
        }
        return MakeColumnRef(token.text);
      }
      case TokenKind::kOperator:
        if (token.text == "(") {
          INVERDA_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
          if (!MatchOperator(")")) {
            return Status::InvalidArgument("missing closing parenthesis");
          }
          return inner;
        }
        return Status::InvalidArgument("unexpected operator '" + token.text +
                                       "'");
      case TokenKind::kEnd:
        return Status::InvalidArgument("unexpected end of expression");
    }
    return Status::Internal("unreachable token kind");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ExprPtr> ParseExpression(const std::string& text) {
  Lexer lexer(text);
  INVERDA_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace inverda
