#ifndef INVERDA_EXPR_DOMAIN_H_
#define INVERDA_EXPR_DOMAIN_H_

#include <vector>

#include "expr/expression.h"
#include "schema/schema.h"

namespace inverda {

/// Three-valued answer of the small-domain satisfiability check.
enum class Tri {
  kNo,       ///< provably no row exists (within the decidable fragment)
  kYes,      ///< a concrete witness row was found
  kUnknown,  ///< outside the decidable fragment or search budget exceeded
};

/// Decides whether some row of `schema` satisfies every condition in `pos`
/// and none of the conditions in `neg`, by enumerating a small candidate
/// domain per referenced column (boundary values derived from the literals
/// the column is compared against, plus NULL).
///
/// Soundness contract:
///  - kYes is always sound: a concrete witness row was evaluated.
///  - kNo is sound for rows whose values conform to the declared column
///    types (the engine is dynamically typed; schema types are advisory),
///    and is only claimed when every condition lies in the decidable
///    fragment — AND/OR/NOT combinations of `column <op> literal`
///    comparisons, `column IS [NOT] NULL`, and boolean literals — and the
///    candidate cross product fits the search budget.
///  - Anything else yields kUnknown; callers should degrade to a warning
///    ("could not decide") rather than an error.
///
/// On kYes, `*witness` (when non-null) receives the witness row.
Tri FindWitness(const TableSchema& schema, const std::vector<ExprPtr>& pos,
                const std::vector<ExprPtr>& neg, Row* witness = nullptr);

/// True when `expr` lies in the fragment FindWitness can refute over
/// (see the kNo soundness contract above).
bool InDecidableFragment(const Expression& expr);

}  // namespace inverda

#endif  // INVERDA_EXPR_DOMAIN_H_
