#ifndef INVERDA_EXPR_PARSER_H_
#define INVERDA_EXPR_PARSER_H_

#include <string>

#include "expr/expression.h"
#include "util/status.h"

namespace inverda {

/// Parses a scalar expression / condition in the small SQL-like language
/// used inside BiDEL SMOs, e.g. "prio = 1", "a < 5 AND b = 'x'",
/// "author || '!'", "COALESCE(nick, name)".
///
/// Grammar (precedence low to high): OR, AND, NOT, comparison / IS [NOT]
/// NULL, additive (+ - ||), multiplicative (* / %), unary minus, primary.
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace inverda

#endif  // INVERDA_EXPR_PARSER_H_
