#include "expr/domain.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/strings.h"

namespace inverda {
namespace {

// The search budget: maximum number of candidate rows to evaluate. Scripts
// compare each column against a handful of literals, so real partition
// conditions stay far below this.
constexpr size_t kMaxCombinations = 10000;

bool IsColumnRef(const ExprPtr& e) {
  return e && e->kind() == ExprKind::kColumnRef;
}
bool IsLiteral(const ExprPtr& e) {
  return e && e->kind() == ExprKind::kLiteral;
}

bool InFragment(const Expression& expr) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kNot: {
      std::vector<ExprPtr> children;
      expr.CollectChildren(&children);
      for (const ExprPtr& c : children) {
        if (!c || !InFragment(*c)) return false;
      }
      return true;
    }
    case ExprKind::kIsNull: {
      std::vector<ExprPtr> children;
      expr.CollectChildren(&children);
      return children.size() == 1 && IsColumnRef(children[0]);
    }
    case ExprKind::kComparison: {
      std::vector<ExprPtr> children;
      expr.CollectChildren(&children);
      if (children.size() != 2) return false;
      return (IsColumnRef(children[0]) && IsLiteral(children[1])) ||
             (IsLiteral(children[0]) && IsColumnRef(children[1]));
    }
    default:
      return false;
  }
}

// Gathers, per column (lower-cased name), the literals it is compared
// against anywhere in `expr`. Works on arbitrary expressions: literals that
// appear outside the decidable fragment still make useful candidates for the
// witness search.
void CollectComparedLiterals(const Expression& expr,
                             std::map<std::string, std::vector<Value>>* out) {
  if (expr.kind() == ExprKind::kComparison) {
    std::vector<ExprPtr> children;
    expr.CollectChildren(&children);
    if (children.size() == 2) {
      const ExprPtr& a = children[0];
      const ExprPtr& b = children[1];
      if (IsColumnRef(a) && IsLiteral(b)) {
        (*out)[ToLower(*a->AsColumnName())].push_back(*b->AsLiteral());
      } else if (IsLiteral(a) && IsColumnRef(b)) {
        (*out)[ToLower(*b->AsColumnName())].push_back(*a->AsLiteral());
      }
    }
  }
  std::vector<ExprPtr> children;
  expr.CollectChildren(&children);
  for (const ExprPtr& c : children) {
    if (c) CollectComparedLiterals(*c, out);
  }
}

// Boundary-complete candidate set for one column. Each ordering comparison
// against a literal partitions the column domain into regions; the set below
// contains a representative of every non-empty region, so exhausting it
// without a witness refutes satisfiability (for type-conforming values).
std::vector<Value> CandidatesFor(DataType type,
                                 const std::vector<Value>& literals) {
  std::vector<Value> out;
  out.push_back(Value::Null());
  switch (type) {
    case DataType::kInt64: {
      std::set<int64_t> ints;
      ints.insert(0);
      for (const Value& v : literals) {
        if (v.is_int()) {
          ints.insert(v.AsInt() - 1);
          ints.insert(v.AsInt());
          ints.insert(v.AsInt() + 1);
        } else if (v.is_double()) {
          // A double literal against an int column: the integers around it
          // cover the <, =, > regions.
          int64_t lo = static_cast<int64_t>(std::floor(v.AsDouble()));
          int64_t hi = static_cast<int64_t>(std::ceil(v.AsDouble()));
          ints.insert(lo - 1);
          ints.insert(lo);
          ints.insert(hi);
          ints.insert(hi + 1);
        }
      }
      for (int64_t i : ints) out.push_back(Value::Int(i));
      break;
    }
    case DataType::kDouble: {
      std::set<double> doubles;
      doubles.insert(0.0);
      for (const Value& v : literals) {
        if (v.is_double() || v.is_int()) {
          doubles.insert(v.AsNumeric());
        }
      }
      std::vector<double> sorted(doubles.begin(), doubles.end());
      for (size_t i = 0; i + 1 < sorted.size(); ++i) {
        doubles.insert((sorted[i] + sorted[i + 1]) / 2.0);
      }
      if (!sorted.empty()) {
        doubles.insert(sorted.front() - 1.0);
        doubles.insert(sorted.back() + 1.0);
      }
      for (double d : doubles) out.push_back(Value::Double(d));
      break;
    }
    case DataType::kString: {
      std::set<std::string> strings;
      strings.insert("");
      for (const Value& v : literals) {
        if (v.is_string()) {
          strings.insert(v.AsString());
          // Immediate lexicographic successor: representative of the region
          // just above the literal.
          strings.insert(v.AsString() + std::string(1, '\0'));
        }
      }
      for (const std::string& s : strings) out.push_back(Value::String(s));
      break;
    }
    case DataType::kBool:
      out.push_back(Value::Bool(false));
      out.push_back(Value::Bool(true));
      break;
  }
  return out;
}

}  // namespace

bool InDecidableFragment(const Expression& expr) { return InFragment(expr); }

Tri FindWitness(const TableSchema& schema, const std::vector<ExprPtr>& pos,
                const std::vector<ExprPtr>& neg, Row* witness) {
  bool decidable = true;
  std::set<std::string> referenced;
  std::map<std::string, std::vector<Value>> literals;
  for (const std::vector<ExprPtr>* group : {&pos, &neg}) {
    for (const ExprPtr& e : *group) {
      if (!e) return Tri::kUnknown;
      if (!InFragment(*e)) decidable = false;
      std::set<std::string> cols;
      e->CollectColumns(&cols);
      for (const std::string& c : cols) referenced.insert(ToLower(c));
      CollectComparedLiterals(*e, &literals);
    }
  }

  // Unknown columns make every evaluation fail; nothing to decide here
  // (the analyzer reports unresolved columns separately).
  for (const std::string& col : referenced) {
    if (!schema.FindColumn(col)) return Tri::kUnknown;
  }

  // One candidate list per schema column; unreferenced columns are pinned
  // to NULL (they cannot influence fragment conditions).
  std::vector<std::vector<Value>> candidates(
      static_cast<size_t>(schema.num_columns()));
  size_t combinations = 1;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const Column& col = schema.columns()[i];
    if (referenced.count(ToLower(col.name)) == 0) {
      candidates[i] = {Value::Null()};
      continue;
    }
    auto it = literals.find(ToLower(col.name));
    static const std::vector<Value> kNoLiterals;
    candidates[i] =
        CandidatesFor(col.type, it == literals.end() ? kNoLiterals : it->second);
    if (combinations > kMaxCombinations / candidates[i].size()) {
      combinations = kMaxCombinations + 1;
    } else {
      combinations *= candidates[i].size();
    }
  }
  bool exhaustive = combinations <= kMaxCombinations;

  // Odometer enumeration of the cross product (bounded by the budget).
  std::vector<size_t> odo(candidates.size(), 0);
  Row row(candidates.size());
  bool eval_failed = false;
  size_t visited = 0;
  while (visited < kMaxCombinations) {
    ++visited;
    for (size_t i = 0; i < candidates.size(); ++i) row[i] = candidates[i][odo[i]];

    bool witness_found = true;
    for (const ExprPtr& e : pos) {
      Result<bool> v = e->EvalBool(schema, row);
      if (!v.ok()) {
        eval_failed = true;
        witness_found = false;
        break;
      }
      if (!v.value()) {
        witness_found = false;
        break;
      }
    }
    if (witness_found) {
      for (const ExprPtr& e : neg) {
        Result<bool> v = e->EvalBool(schema, row);
        if (!v.ok()) {
          eval_failed = true;
          witness_found = false;
          break;
        }
        if (v.value()) {
          witness_found = false;
          break;
        }
      }
    }
    if (witness_found) {
      if (witness != nullptr) *witness = row;
      return Tri::kYes;
    }

    // Advance the odometer; stop after the last combination.
    size_t i = 0;
    for (; i < odo.size(); ++i) {
      if (++odo[i] < candidates[i].size()) break;
      odo[i] = 0;
    }
    if (i == odo.size()) break;
  }

  if (decidable && exhaustive && !eval_failed) return Tri::kNo;
  return Tri::kUnknown;
}

}  // namespace inverda
