#include "expr/expression.h"

#include <atomic>
#include <cmath>

#include "util/strings.h"

namespace inverda {

Result<bool> Expression::EvalBool(const TableSchema& schema,
                                  const Row& row) const {
  INVERDA_ASSIGN_OR_RETURN(Value v, Eval(schema, row));
  if (v.is_null()) return false;
  if (v.is_bool()) return v.AsBool();
  return Status::InvalidArgument("condition did not evaluate to a boolean: " +
                                 ToString());
}

namespace {

class LiteralExpr : public Expression {
 public:
  explicit LiteralExpr(Value value) : value_(std::move(value)) {}

  Result<Value> Eval(const TableSchema&, const Row&) const override {
    return value_;
  }
  std::string ToString() const override { return value_.ToString(); }
  void CollectColumns(std::set<std::string>*) const override {}
  DataType InferType(const TableSchema&) const override {
    if (value_.is_int()) return DataType::kInt64;
    if (value_.is_double()) return DataType::kDouble;
    if (value_.is_bool()) return DataType::kBool;
    return DataType::kString;
  }
  ExprKind kind() const override { return ExprKind::kLiteral; }
  void CollectChildren(std::vector<ExprPtr>*) const override {}
  const Value* AsLiteral() const override { return &value_; }

 private:
  Value value_;
};

class ColumnRefExpr : public Expression {
 public:
  explicit ColumnRefExpr(std::string column) : column_(std::move(column)) {}

  Result<Value> Eval(const TableSchema& schema, const Row& row) const override {
    // Cache the resolved index per schema identity; expressions are
    // evaluated row-by-row against one schema in hot loops, and the same
    // shared expression may be evaluated from many reader threads at once
    // (concurrent scans of one compiled plan), so the cache publishes
    // lock-free: the writer clears the schema, stores the index (release),
    // then stores the schema (release). A reader that sees its schema and
    // then a foreign index must — via the acquire on the index load — also
    // see that writer's earlier schema-clear on the re-read, so a torn
    // pair is always rejected and recomputed. FindColumn is deterministic
    // per schema, hence any accepted (schema, index) pair is correct.
    const TableSchema* s = cached_schema_.load(std::memory_order_acquire);
    if (s == &schema) {
      int idx = cached_index_.load(std::memory_order_acquire);
      if (cached_schema_.load(std::memory_order_relaxed) == s) {
        return row[static_cast<size_t>(idx)];
      }
    }
    std::optional<int> idx = schema.FindColumn(column_);
    if (!idx) {
      return Status::NotFound("column " + column_ + " not in " +
                              schema.name());
    }
    cached_schema_.store(nullptr, std::memory_order_relaxed);
    cached_index_.store(*idx, std::memory_order_release);
    cached_schema_.store(&schema, std::memory_order_release);
    return row[static_cast<size_t>(*idx)];
  }
  std::string ToString() const override { return column_; }
  void CollectColumns(std::set<std::string>* out) const override {
    out->insert(column_);
  }
  DataType InferType(const TableSchema& schema) const override {
    std::optional<int> idx = schema.FindColumn(column_);
    if (!idx) return DataType::kString;
    return schema.columns()[static_cast<size_t>(*idx)].type;
  }
  ExprKind kind() const override { return ExprKind::kColumnRef; }
  void CollectChildren(std::vector<ExprPtr>*) const override {}
  const std::string* AsColumnName() const override { return &column_; }

 private:
  std::string column_;
  mutable std::atomic<const TableSchema*> cached_schema_{nullptr};
  mutable std::atomic<int> cached_index_{0};
};

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

class ComparisonExpr : public Expression {
 public:
  ComparisonExpr(CompareOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Result<Value> Eval(const TableSchema& schema, const Row& row) const override {
    INVERDA_ASSIGN_OR_RETURN(Value a, lhs_->Eval(schema, row));
    INVERDA_ASSIGN_OR_RETURN(Value b, rhs_->Eval(schema, row));
    switch (op_) {
      case CompareOp::kEq:
        return Value::Bool(ValuesEqual(a, b));
      case CompareOp::kNe:
        return Value::Bool(!ValuesEqual(a, b));
      default:
        break;
    }
    // Ordering comparisons with NULL are false (unknown collapsed to false).
    if (a.is_null() || b.is_null()) return Value::Bool(false);
    int cmp = Compare(a, b);
    switch (op_) {
      case CompareOp::kLt:
        return Value::Bool(cmp < 0);
      case CompareOp::kLe:
        return Value::Bool(cmp <= 0);
      case CompareOp::kGt:
        return Value::Bool(cmp > 0);
      case CompareOp::kGe:
        return Value::Bool(cmp >= 0);
      default:
        return Status::Internal("unreachable comparison op");
    }
  }

  std::string ToString() const override {
    return lhs_->ToString() + " " + CompareOpName(op_) + " " +
           rhs_->ToString();
  }
  void CollectColumns(std::set<std::string>* out) const override {
    lhs_->CollectColumns(out);
    rhs_->CollectColumns(out);
  }
  DataType InferType(const TableSchema&) const override {
    return DataType::kBool;
  }
  ExprKind kind() const override { return ExprKind::kComparison; }
  void CollectChildren(std::vector<ExprPtr>* out) const override {
    out->push_back(lhs_);
    out->push_back(rhs_);
  }
  std::optional<CompareOp> comparison_op() const override { return op_; }

 private:
  static bool ValuesEqual(const Value& a, const Value& b) {
    // Numeric values compare by value across int64/double.
    if ((a.is_int() || a.is_double()) && (b.is_int() || b.is_double())) {
      return a.AsNumeric() == b.AsNumeric();
    }
    return a == b;
  }
  static int Compare(const Value& a, const Value& b) {
    if (ValuesEqual(a, b)) return 0;
    return a < b ? -1 : 1;
  }

  CompareOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class BoolBinaryExpr : public Expression {
 public:
  BoolBinaryExpr(bool is_and, ExprPtr lhs, ExprPtr rhs)
      : is_and_(is_and), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Result<Value> Eval(const TableSchema& schema, const Row& row) const override {
    INVERDA_ASSIGN_OR_RETURN(bool a, lhs_->EvalBool(schema, row));
    if (is_and_ && !a) return Value::Bool(false);
    if (!is_and_ && a) return Value::Bool(true);
    INVERDA_ASSIGN_OR_RETURN(bool b, rhs_->EvalBool(schema, row));
    return Value::Bool(b);
  }

  std::string ToString() const override {
    return "(" + lhs_->ToString() + (is_and_ ? " AND " : " OR ") +
           rhs_->ToString() + ")";
  }
  void CollectColumns(std::set<std::string>* out) const override {
    lhs_->CollectColumns(out);
    rhs_->CollectColumns(out);
  }
  DataType InferType(const TableSchema&) const override {
    return DataType::kBool;
  }
  ExprKind kind() const override {
    return is_and_ ? ExprKind::kAnd : ExprKind::kOr;
  }
  void CollectChildren(std::vector<ExprPtr>* out) const override {
    out->push_back(lhs_);
    out->push_back(rhs_);
  }

 private:
  bool is_and_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class NotExpr : public Expression {
 public:
  explicit NotExpr(ExprPtr operand) : operand_(std::move(operand)) {}

  Result<Value> Eval(const TableSchema& schema, const Row& row) const override {
    INVERDA_ASSIGN_OR_RETURN(bool v, operand_->EvalBool(schema, row));
    return Value::Bool(!v);
  }
  std::string ToString() const override {
    return "NOT (" + operand_->ToString() + ")";
  }
  void CollectColumns(std::set<std::string>* out) const override {
    operand_->CollectColumns(out);
  }
  DataType InferType(const TableSchema&) const override {
    return DataType::kBool;
  }
  ExprKind kind() const override { return ExprKind::kNot; }
  void CollectChildren(std::vector<ExprPtr>* out) const override {
    out->push_back(operand_);
  }

 private:
  ExprPtr operand_;
};

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
    case ArithOp::kMod:
      return "%";
    case ArithOp::kConcat:
      return "||";
  }
  return "?";
}

class ArithExpr : public Expression {
 public:
  ArithExpr(ArithOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Result<Value> Eval(const TableSchema& schema, const Row& row) const override {
    INVERDA_ASSIGN_OR_RETURN(Value a, lhs_->Eval(schema, row));
    INVERDA_ASSIGN_OR_RETURN(Value b, rhs_->Eval(schema, row));
    if (a.is_null() || b.is_null()) return Value::Null();
    if (op_ == ArithOp::kConcat) {
      return Value::String(AsText(a) + AsText(b));
    }
    if (!(a.is_int() || a.is_double()) || !(b.is_int() || b.is_double())) {
      return Status::InvalidArgument("arithmetic on non-numeric values in " +
                                     ToString());
    }
    if (a.is_int() && b.is_int()) {
      int64_t x = a.AsInt(), y = b.AsInt();
      switch (op_) {
        case ArithOp::kAdd:
          return Value::Int(x + y);
        case ArithOp::kSub:
          return Value::Int(x - y);
        case ArithOp::kMul:
          return Value::Int(x * y);
        case ArithOp::kDiv:
          if (y == 0) return Status::InvalidArgument("division by zero");
          return Value::Int(x / y);
        case ArithOp::kMod:
          if (y == 0) return Status::InvalidArgument("modulo by zero");
          return Value::Int(x % y);
        default:
          break;
      }
    }
    double x = a.AsNumeric(), y = b.AsNumeric();
    switch (op_) {
      case ArithOp::kAdd:
        return Value::Double(x + y);
      case ArithOp::kSub:
        return Value::Double(x - y);
      case ArithOp::kMul:
        return Value::Double(x * y);
      case ArithOp::kDiv:
        if (y == 0) return Status::InvalidArgument("division by zero");
        return Value::Double(x / y);
      case ArithOp::kMod:
        if (y == 0) return Status::InvalidArgument("modulo by zero");
        return Value::Double(std::fmod(x, y));
      default:
        return Status::Internal("unreachable arithmetic op");
    }
  }

  std::string ToString() const override {
    return "(" + lhs_->ToString() + " " + ArithOpName(op_) + " " +
           rhs_->ToString() + ")";
  }
  void CollectColumns(std::set<std::string>* out) const override {
    lhs_->CollectColumns(out);
    rhs_->CollectColumns(out);
  }
  DataType InferType(const TableSchema& schema) const override {
    if (op_ == ArithOp::kConcat) return DataType::kString;
    DataType a = lhs_->InferType(schema);
    DataType b = rhs_->InferType(schema);
    if (a == DataType::kDouble || b == DataType::kDouble) {
      return DataType::kDouble;
    }
    return DataType::kInt64;
  }
  ExprKind kind() const override { return ExprKind::kArith; }
  void CollectChildren(std::vector<ExprPtr>* out) const override {
    out->push_back(lhs_);
    out->push_back(rhs_);
  }

 private:
  static std::string AsText(const Value& v) {
    if (v.is_string()) return v.AsString();
    if (v.is_int()) return std::to_string(v.AsInt());
    if (v.is_double()) return std::to_string(v.AsDouble());
    if (v.is_bool()) return v.AsBool() ? "true" : "false";
    return "";
  }

  ArithOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class IsNullExpr : public Expression {
 public:
  IsNullExpr(ExprPtr operand, bool negated)
      : operand_(std::move(operand)), negated_(negated) {}

  Result<Value> Eval(const TableSchema& schema, const Row& row) const override {
    INVERDA_ASSIGN_OR_RETURN(Value v, operand_->Eval(schema, row));
    return Value::Bool(v.is_null() != negated_);
  }
  std::string ToString() const override {
    return operand_->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL");
  }
  void CollectColumns(std::set<std::string>* out) const override {
    operand_->CollectColumns(out);
  }
  DataType InferType(const TableSchema&) const override {
    return DataType::kBool;
  }
  ExprKind kind() const override { return ExprKind::kIsNull; }
  void CollectChildren(std::vector<ExprPtr>* out) const override {
    out->push_back(operand_);
  }
  bool isnull_negated() const override { return negated_; }

 private:
  ExprPtr operand_;
  bool negated_;
};

enum class Builtin { kUpper, kLower, kLength, kAbs, kCoalesce, kConcat };

class FunctionExpr : public Expression {
 public:
  FunctionExpr(Builtin builtin, std::string name, std::vector<ExprPtr> args)
      : builtin_(builtin), name_(std::move(name)), args_(std::move(args)) {}

  Result<Value> Eval(const TableSchema& schema, const Row& row) const override {
    std::vector<Value> values;
    values.reserve(args_.size());
    for (const ExprPtr& arg : args_) {
      INVERDA_ASSIGN_OR_RETURN(Value v, arg->Eval(schema, row));
      values.push_back(std::move(v));
    }
    switch (builtin_) {
      case Builtin::kUpper:
      case Builtin::kLower: {
        if (values[0].is_null()) return Value::Null();
        if (!values[0].is_string()) {
          return Status::InvalidArgument(name_ + " expects a string");
        }
        std::string s = values[0].AsString();
        for (char& c : s) {
          c = builtin_ == Builtin::kUpper
                  ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                  : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        }
        return Value::String(std::move(s));
      }
      case Builtin::kLength:
        if (values[0].is_null()) return Value::Null();
        if (!values[0].is_string()) {
          return Status::InvalidArgument("LENGTH expects a string");
        }
        return Value::Int(static_cast<int64_t>(values[0].AsString().size()));
      case Builtin::kAbs:
        if (values[0].is_null()) return Value::Null();
        if (values[0].is_int()) return Value::Int(std::abs(values[0].AsInt()));
        if (values[0].is_double()) {
          return Value::Double(std::fabs(values[0].AsDouble()));
        }
        return Status::InvalidArgument("ABS expects a number");
      case Builtin::kCoalesce:
        for (const Value& v : values) {
          if (!v.is_null()) return v;
        }
        return Value::Null();
      case Builtin::kConcat: {
        std::string out;
        for (const Value& v : values) {
          if (v.is_null()) continue;
          if (v.is_string()) {
            out += v.AsString();
          } else if (v.is_int()) {
            out += std::to_string(v.AsInt());
          } else if (v.is_double()) {
            out += std::to_string(v.AsDouble());
          } else {
            out += v.AsBool() ? "true" : "false";
          }
        }
        return Value::String(std::move(out));
      }
    }
    return Status::Internal("unreachable builtin");
  }

  std::string ToString() const override {
    std::vector<std::string> parts;
    parts.reserve(args_.size());
    for (const ExprPtr& a : args_) parts.push_back(a->ToString());
    return name_ + "(" + Join(parts, ", ") + ")";
  }
  void CollectColumns(std::set<std::string>* out) const override {
    for (const ExprPtr& a : args_) a->CollectColumns(out);
  }
  DataType InferType(const TableSchema& schema) const override {
    switch (builtin_) {
      case Builtin::kUpper:
      case Builtin::kLower:
      case Builtin::kConcat:
        return DataType::kString;
      case Builtin::kLength:
        return DataType::kInt64;
      case Builtin::kAbs:
        return args_[0]->InferType(schema);
      case Builtin::kCoalesce:
        return args_[0]->InferType(schema);
    }
    return DataType::kString;
  }
  ExprKind kind() const override { return ExprKind::kFunction; }
  void CollectChildren(std::vector<ExprPtr>* out) const override {
    for (const ExprPtr& a : args_) out->push_back(a);
  }

 private:
  Builtin builtin_;
  std::string name_;
  std::vector<ExprPtr> args_;
};

}  // namespace

ExprPtr MakeLiteral(Value value) {
  return std::make_shared<LiteralExpr>(std::move(value));
}

ExprPtr MakeColumnRef(std::string column) {
  return std::make_shared<ColumnRefExpr>(std::move(column));
}

ExprPtr MakeComparison(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<ComparisonExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr MakeAnd(ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<BoolBinaryExpr>(true, std::move(lhs), std::move(rhs));
}

ExprPtr MakeOr(ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<BoolBinaryExpr>(false, std::move(lhs),
                                          std::move(rhs));
}

ExprPtr MakeNot(ExprPtr operand) {
  return std::make_shared<NotExpr>(std::move(operand));
}

ExprPtr MakeArith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<ArithExpr>(op, std::move(lhs), std::move(rhs));
}

ExprPtr MakeIsNull(ExprPtr operand, bool negated) {
  return std::make_shared<IsNullExpr>(std::move(operand), negated);
}

Result<ExprPtr> MakeFunctionCall(const std::string& name,
                                 std::vector<ExprPtr> args) {
  struct Entry {
    const char* name;
    Builtin builtin;
    int min_args;
    int max_args;  // -1 = unbounded
  };
  static constexpr Entry kBuiltins[] = {
      {"UPPER", Builtin::kUpper, 1, 1},   {"LOWER", Builtin::kLower, 1, 1},
      {"LENGTH", Builtin::kLength, 1, 1}, {"ABS", Builtin::kAbs, 1, 1},
      {"COALESCE", Builtin::kCoalesce, 1, -1},
      {"CONCAT", Builtin::kConcat, 1, -1},
  };
  for (const Entry& e : kBuiltins) {
    if (EqualsIgnoreCase(name, e.name)) {
      int n = static_cast<int>(args.size());
      if (n < e.min_args || (e.max_args >= 0 && n > e.max_args)) {
        return Status::InvalidArgument("wrong argument count for " + name);
      }
      return ExprPtr(std::make_shared<FunctionExpr>(e.builtin, ToLower(name),
                                                    std::move(args)));
    }
  }
  return Status::NotFound("unknown function " + name);
}

Status CheckColumnsResolve(const Expression& expr, const TableSchema& schema) {
  std::set<std::string> columns;
  expr.CollectColumns(&columns);
  for (const std::string& c : columns) {
    if (!schema.FindColumn(c)) {
      return Status::NotFound("column " + c + " referenced by '" +
                              expr.ToString() + "' not in " +
                              schema.ToString());
    }
  }
  return Status::OK();
}

}  // namespace inverda
