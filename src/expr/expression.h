#ifndef INVERDA_EXPR_EXPRESSION_H_
#define INVERDA_EXPR_EXPRESSION_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "schema/schema.h"
#include "types/row.h"
#include "util/status.h"

namespace inverda {

class Expression;

/// Expressions are immutable and shared; SMO instances hold them by pointer.
using ExprPtr = std::shared_ptr<const Expression>;

/// Structural node kinds, exposed so static analyses (src/expr/domain.cc,
/// src/analysis) can walk the tree without dynamic casts.
enum class ExprKind {
  kLiteral,
  kColumnRef,
  kComparison,
  kAnd,
  kOr,
  kNot,
  kArith,
  kIsNull,
  kFunction,
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv, kMod, kConcat };

/// Scalar expression over the columns of one tuple. Used for the SMO
/// parameters of BiDEL: the split/merge/join/decompose conditions c(A) and
/// the value functions f(r1,...,rn) of ADD/DROP COLUMN.
///
/// Evaluation is two-valued: conditions treat NULL (the ω marker) as equal
/// to NULL and distinct from every other value, which mirrors how the
/// paper's Datalog rules handle attribute-list equality.
class Expression {
 public:
  virtual ~Expression() = default;

  /// Evaluates against one payload row described by `schema`.
  virtual Result<Value> Eval(const TableSchema& schema,
                             const Row& row) const = 0;

  /// SQL-ish rendering (also used by the SQL delta-code generator).
  virtual std::string ToString() const = 0;

  /// Adds the names of all referenced columns to `out`.
  virtual void CollectColumns(std::set<std::string>* out) const = 0;

  /// Best-effort static type of the expression under `schema`. Schema types
  /// are advisory in this engine (BiDEL itself is untyped); this is used to
  /// pick a column type for ADD COLUMN when none is declared.
  virtual DataType InferType(const TableSchema& schema) const = 0;

  /// Convenience: evaluates and coerces to a condition truth value.
  /// NULL and FALSE are false; TRUE is true; any other type is an error.
  Result<bool> EvalBool(const TableSchema& schema, const Row& row) const;

  // --- Structural introspection (for static analysis) ----------------------

  /// The structural kind of this node.
  virtual ExprKind kind() const = 0;

  /// Appends direct sub-expressions to `out` (operands, function arguments).
  /// Leaves append nothing.
  virtual void CollectChildren(std::vector<ExprPtr>* out) const = 0;

  /// Non-null iff kind() == kLiteral; points at the literal value.
  virtual const Value* AsLiteral() const { return nullptr; }

  /// Non-null iff kind() == kColumnRef; points at the column name.
  virtual const std::string* AsColumnName() const { return nullptr; }

  /// Set iff kind() == kComparison.
  virtual std::optional<CompareOp> comparison_op() const {
    return std::nullopt;
  }

  /// Meaningful iff kind() == kIsNull: true for IS NOT NULL.
  virtual bool isnull_negated() const { return false; }
};

// ---------------------------------------------------------------------------
// Factory functions. These are the public construction API; concrete node
// classes are implementation details of expression.cc.
// ---------------------------------------------------------------------------

ExprPtr MakeLiteral(Value value);
ExprPtr MakeColumnRef(std::string column);

ExprPtr MakeComparison(CompareOp op, ExprPtr lhs, ExprPtr rhs);

ExprPtr MakeAnd(ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeOr(ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeNot(ExprPtr operand);

ExprPtr MakeArith(ArithOp op, ExprPtr lhs, ExprPtr rhs);

ExprPtr MakeIsNull(ExprPtr operand, bool negated);

/// Built-in functions: UPPER, LOWER, LENGTH, ABS, COALESCE, CONCAT.
Result<ExprPtr> MakeFunctionCall(const std::string& name,
                                 std::vector<ExprPtr> args);

/// Validates that every column referenced by `expr` exists in `schema`.
Status CheckColumnsResolve(const Expression& expr, const TableSchema& schema);

}  // namespace inverda

#endif  // INVERDA_EXPR_EXPRESSION_H_
