#include "sqlgen/sqlgen.h"

#include "util/strings.h"

namespace inverda {
namespace {

using datalog::Literal;
using datalog::LiteralKind;
using datalog::Rule;
using datalog::RuleSet;
using datalog::Term;

// Where a variable's value comes from in the FROM clause: a list of
// alias-qualified column expressions.
using VarColumns = std::vector<std::string>;

struct SubqueryBuilder {
  const SqlGrounding& grounding;
  std::vector<std::string> from;       // "table alias"
  std::vector<std::string> where;      // conjuncts
  std::map<std::string, VarColumns> bindings;
  int alias_counter = 0;
  Status status = Status::OK();

  explicit SubqueryBuilder(const SqlGrounding& g) : grounding(g) {}

  const SqlRelation* Relation(const std::string& symbol) {
    auto it = grounding.relations.find(symbol);
    if (it == grounding.relations.end()) {
      status = Status::NotFound("no SQL grounding for relation " + symbol);
      return nullptr;
    }
    return &it->second;
  }

  // Column expressions of argument `i` of `rel` qualified with `alias`.
  VarColumns ArgColumns(const SqlRelation& rel, const std::string& alias,
                        size_t i) {
    VarColumns out;
    if (i == 0) {
      out.push_back(alias + ".p");
      return out;
    }
    if (i - 1 < rel.arg_columns.size()) {
      for (const std::string& col : rel.arg_columns[i - 1]) {
        out.push_back(alias + "." + col);
      }
    }
    return out;
  }

  void BindOrJoin(const Term& term, VarColumns columns) {
    if (term.is_wildcard()) return;
    auto it = bindings.find(term.name);
    if (it == bindings.end()) {
      bindings.emplace(term.name, std::move(columns));
      return;
    }
    // Repeated variable: equate column-wise (the Figure 7 join condition).
    const VarColumns& bound = it->second;
    for (size_t i = 0; i < bound.size() && i < columns.size(); ++i) {
      where.push_back(bound[i] + " = " + columns[i]);
    }
  }

  void AddPositive(const Literal& literal) {
    const SqlRelation* rel = Relation(literal.symbol);
    if (rel == nullptr) return;
    std::string alias = "t" + std::to_string(alias_counter++);
    from.push_back(rel->table + " " + alias);
    for (size_t i = 0; i < literal.args.size(); ++i) {
      BindOrJoin(literal.args[i], ArgColumns(*rel, alias, i));
    }
  }

  void AddNegative(const Literal& literal) {
    const SqlRelation* rel = Relation(literal.symbol);
    if (rel == nullptr) return;
    std::string alias = "n" + std::to_string(alias_counter++);
    std::vector<std::string> correlation;
    for (size_t i = 0; i < literal.args.size(); ++i) {
      const Term& term = literal.args[i];
      if (term.is_wildcard()) continue;
      auto bound = bindings.find(term.name);
      if (bound == bindings.end()) continue;  // existential inside NOT EXISTS
      VarColumns inner = ArgColumns(*rel, alias, i);
      for (size_t c = 0; c < inner.size() && c < bound->second.size(); ++c) {
        correlation.push_back(inner[c] + " = " + bound->second[c]);
      }
    }
    std::string sub = "NOT EXISTS (SELECT 1 FROM " + rel->table + " " + alias;
    if (!correlation.empty()) sub += " WHERE " + Join(correlation, " AND ");
    sub += ")";
    where.push_back(std::move(sub));
  }

  void AddCondition(const Literal& literal) {
    auto it = grounding.condition_sql.find(literal.symbol);
    if (it == grounding.condition_sql.end()) {
      status = Status::NotFound("no SQL for condition " + literal.symbol);
      return;
    }
    if (literal.negated) {
      where.push_back("NOT (" + it->second + ")");
    } else {
      where.push_back("(" + it->second + ")");
    }
  }

  void AddFunction(const Literal& literal) {
    auto it = grounding.function_sql.find(literal.symbol);
    std::string expr =
        it != grounding.function_sql.end() ? it->second : literal.symbol + "()";
    if (literal.out.is_wildcard()) return;
    bindings[literal.out.name] = {"(" + expr + ")"};
  }

  void AddCompare(const Literal& literal) {
    const Term& a = literal.args[0];
    const Term& b = literal.args[1];
    // The ω marker renders as SQL NULL tests: A != omega -> IS NOT NULL on
    // every column, A = omega -> IS NULL.
    bool a_omega = a.name == "omega";
    bool b_omega = b.name == "omega";
    if (a_omega || b_omega) {
      const Term& var = a_omega ? b : a;
      auto bound = bindings.find(var.name);
      if (bound == bindings.end()) {
        status = Status::InvalidArgument("comparison over unbound variables");
        return;
      }
      std::vector<std::string> tests;
      for (const std::string& col : bound->second) {
        tests.push_back(col + (literal.compare_equal ? " IS NULL"
                                                     : " IS NOT NULL"));
      }
      if (!tests.empty()) {
        where.push_back(
            "(" + Join(tests, literal.compare_equal ? " AND " : " OR ") +
            ")");
      }
      return;
    }
    auto ba = bindings.find(a.name);
    auto bb = bindings.find(b.name);
    if (ba == bindings.end() || bb == bindings.end()) {
      status = Status::InvalidArgument("comparison over unbound variables");
      return;
    }
    std::vector<std::string> pairs;
    for (size_t i = 0; i < ba->second.size() && i < bb->second.size(); ++i) {
      pairs.push_back(ba->second[i] +
                      (literal.compare_equal ? " = " : " <> ") +
                      bb->second[i]);
    }
    if (pairs.empty()) return;
    where.push_back("(" + Join(pairs, literal.compare_equal ? " AND " : " OR ") +
                    ")");
  }
};

Result<std::string> RuleToSelect(const Rule& rule,
                                 const SqlGrounding& grounding) {
  SubqueryBuilder b(grounding);
  // Positive relation literals first so variables are bound.
  for (const Literal& l : rule.body) {
    if (l.kind == LiteralKind::kRelation && !l.negated) b.AddPositive(l);
  }
  for (const Literal& l : rule.body) {
    if (l.kind == LiteralKind::kFunction) b.AddFunction(l);
  }
  for (const Literal& l : rule.body) {
    switch (l.kind) {
      case LiteralKind::kRelation:
        if (l.negated) b.AddNegative(l);
        break;
      case LiteralKind::kCondition:
        b.AddCondition(l);
        break;
      case LiteralKind::kCompare:
        b.AddCompare(l);
        break;
      case LiteralKind::kFunction:
        break;
    }
  }
  INVERDA_RETURN_IF_ERROR(b.status);

  // SELECT list: output column names come from the head relation's
  // grounding, value expressions from the variable bindings.
  const SqlRelation* head_rel = b.Relation(rule.head.predicate);
  INVERDA_RETURN_IF_ERROR(b.status);
  std::vector<std::string> select;
  for (size_t i = 0; i < rule.head.args.size(); ++i) {
    const Term& term = rule.head.args[i];
    std::vector<std::string> out_names;
    if (i == 0) {
      out_names.push_back("p");
    } else if (i - 1 < head_rel->arg_columns.size()) {
      out_names = head_rel->arg_columns[i - 1];
    }
    VarColumns values;
    if (!term.is_wildcard()) {
      auto it = b.bindings.find(term.name);
      if (it != b.bindings.end()) values = it->second;
    }
    for (size_t c = 0; c < out_names.size(); ++c) {
      std::string value = c < values.size() ? values[c] : "NULL";
      select.push_back(value + " AS " + out_names[c]);
    }
  }

  std::string sql = "  SELECT " + Join(select, ", ") + "\n  FROM " +
                    (b.from.empty() ? "(VALUES (1)) one(x)"
                                    : Join(b.from, ", "));
  if (!b.where.empty()) {
    sql += "\n  WHERE " + Join(b.where, "\n    AND ");
  }
  return sql;
}

}  // namespace

Result<std::string> GenerateViewSql(const RuleSet& rules,
                                    const std::string& head,
                                    const SqlGrounding& grounding) {
  std::vector<std::string> branches;
  for (const Rule& rule : rules.rules) {
    if (rule.head.predicate != head) continue;
    INVERDA_ASSIGN_OR_RETURN(std::string select,
                             RuleToSelect(rule, grounding));
    branches.push_back(std::move(select));
  }
  if (branches.empty()) {
    return Status::NotFound("no rules derive " + head);
  }
  auto it = grounding.relations.find(head);
  std::string view_name = it != grounding.relations.end() ? it->second.table
                                                          : head;
  return "CREATE OR REPLACE VIEW " + view_name + " AS\n" +
         Join(branches, "\nUNION\n") + ";\n";
}

Result<std::string> GenerateAllViews(const RuleSet& rules,
                                     const SqlGrounding& grounding) {
  std::string out;
  for (const std::string& head : rules.HeadPredicates()) {
    INVERDA_ASSIGN_OR_RETURN(std::string view,
                             GenerateViewSql(rules, head, grounding));
    out += view;
    out += "\n";
  }
  return out;
}

Result<SqlGrounding> GroundingForSmo(const VersionCatalog& catalog, SmoId id,
                                     const SmoRules& rules) {
  const SmoInstance& inst = catalog.smo(id);
  SqlGrounding grounding;
  grounding.condition_sql = rules.grounding.condition_sql;
  grounding.function_sql = rules.grounding.function_sql;

  auto add_data_relation = [&](const std::string& symbol, TvId tv) {
    const TableVersion& info = catalog.table_version(tv);
    SqlRelation rel;
    rel.table = catalog.IsPhysical(tv) ? catalog.DataTableName(tv)
                                       : ToLower(info.name) + "_v" +
                                             std::to_string(tv);
    // One payload segment covering all columns: the rule templates use a
    // single attribute-list variable per data relation argument (vertical
    // SMOs split it into two segments).
    rel.arg_columns = {info.schema.ColumnNames()};
    grounding.relations[symbol] = std::move(rel);
  };

  for (size_t i = 0; i < rules.source_relations.size() && i < inst.sources.size();
       ++i) {
    add_data_relation(rules.source_relations[i], inst.sources[i]);
  }
  for (size_t i = 0; i < rules.target_relations.size() && i < inst.targets.size();
       ++i) {
    add_data_relation(rules.target_relations[i], inst.targets[i]);
  }

  // Vertical SMOs use (A, B) segments; adjust the combined relation's
  // grounding so its two payload arguments split the columns.
  if (inst.smo->kind() == SmoKind::kDecompose && !inst.sources.empty() &&
      inst.targets.size() >= 1) {
    const auto& d = static_cast<const DecomposeSmo&>(*inst.smo);
    auto it = grounding.relations.find(rules.source_relations[0]);
    if (it != grounding.relations.end()) {
      it->second.arg_columns = {d.s_columns(), d.t_columns()};
    }
  }
  if (inst.smo->kind() == SmoKind::kJoin && inst.sources.size() == 2) {
    auto it = grounding.relations.find(rules.target_relations[0]);
    if (it != grounding.relations.end()) {
      const TableVersion& l = catalog.table_version(inst.sources[0]);
      const TableVersion& r = catalog.table_version(inst.sources[1]);
      it->second.arg_columns = {l.schema.ColumnNames(),
                                r.schema.ColumnNames()};
    }
  }

  // Aux relations.
  for (const AuxDef& aux : inst.aux_defs) {
    SqlRelation rel;
    rel.table = catalog.AuxTableName(id, aux.short_name);
    std::vector<std::string> cols;
    for (const Column& c : aux.payload) cols.push_back(c.name);
    // Key-only aux tables (R-, R*, ...) have no payload argument; payload
    // aux tables carry one list segment.
    if (aux.short_name == "S_plus" || aux.short_name == "T_prime" ||
        aux.short_name == "L_plus" || aux.short_name == "R_plus" ||
        aux.short_name == "B") {
      rel.arg_columns = {cols};
    } else {
      for (const std::string& c : cols) {
        rel.arg_columns.push_back({c});
      }
    }
    grounding.relations[aux.short_name] = std::move(rel);
  }
  return grounding;
}

}  // namespace inverda
