#ifndef INVERDA_SQLGEN_SQLGEN_H_
#define INVERDA_SQLGEN_SQLGEN_H_

#include <map>
#include <string>
#include <vector>

#include "bidel/rules.h"
#include "catalog/catalog.h"
#include "datalog/rule.h"
#include "util/status.h"

namespace inverda {

/// Concrete grounding of the relation symbols of a rule set for SQL
/// rendering: physical table name plus, for every atom argument after the
/// key, the concrete column names it expands to.
struct SqlRelation {
  std::string table;
  std::vector<std::vector<std::string>> arg_columns;
};

struct SqlGrounding {
  std::map<std::string, SqlRelation> relations;
  std::map<std::string, std::string> condition_sql;  // cR -> "prio = 1"
  std::map<std::string, std::string> function_sql;   // f  -> "prio * 2"
};

/// Renders one CREATE VIEW statement for `head` following the translation
/// pattern of Figure 7: one UNION branch per rule, positive literals in the
/// FROM clause joined on shared variables, negative literals as NOT EXISTS
/// subselects, conditions in the WHERE clause.
Result<std::string> GenerateViewSql(const datalog::RuleSet& rules,
                                    const std::string& head,
                                    const SqlGrounding& grounding);

/// Renders the CREATE VIEW statements of every head predicate of `rules`.
Result<std::string> GenerateAllViews(const datalog::RuleSet& rules,
                                     const SqlGrounding& grounding);

/// Builds the grounding for one SMO instance of the catalog: data relation
/// symbols map to the neighbouring table versions' current access paths,
/// aux symbols to their physical tables.
Result<SqlGrounding> GroundingForSmo(const VersionCatalog& catalog, SmoId id,
                                     const SmoRules& rules);

/// The full generated delta code (views + triggers) for one SMO instance in
/// its current materialization state: the artifact InVerDa would install in
/// the DBMS. Rendering only — execution happens in the mapping kernels.
Result<std::string> GenerateDeltaCode(const VersionCatalog& catalog, SmoId id);

/// The delta code for an entire schema version: every SMO on the paths
/// between the version's table versions and the physical data.
Result<std::string> GenerateDeltaCodeForVersion(const VersionCatalog& catalog,
                                                const std::string& version);

/// The names of the artifacts (views and INSTEAD OF triggers)
/// GenerateDeltaCode would install for SMO instance `id` in its current
/// materialization state, e.g. "VIEW Task" and "TRIGGER Task_insert".
/// Lets lint diagnostics reference the generated objects without rendering
/// the full delta code. Catalog-only SMOs yield an empty list.
Result<std::vector<std::string>> DeltaArtifactNames(
    const VersionCatalog& catalog, SmoId id);

}  // namespace inverda

#endif  // INVERDA_SQLGEN_SQLGEN_H_
