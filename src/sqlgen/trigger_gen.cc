#include "sqlgen/sqlgen.h"

#include "plan/compiler.h"
#include "util/strings.h"

namespace inverda {
namespace {

using datalog::Literal;
using datalog::LiteralKind;
using datalog::Rule;
using datalog::RuleSet;

// Renders the condition part of a rule body as a trigger IF-condition over
// the NEW record: conditions become their SQL text with columns qualified
// by NEW, negative relation literals become NOT EXISTS probes.
Result<std::string> RuleGuard(const Rule& rule, const SqlGrounding& grounding) {
  std::vector<std::string> conjuncts;
  for (const Literal& l : rule.body) {
    switch (l.kind) {
      case LiteralKind::kCondition: {
        auto it = grounding.condition_sql.find(l.symbol);
        if (it == grounding.condition_sql.end()) {
          return Status::NotFound("no SQL for condition " + l.symbol);
        }
        conjuncts.push_back((l.negated ? "NOT (" : "(") + it->second + ")");
        break;
      }
      case LiteralKind::kRelation: {
        if (!l.negated) break;  // the NEW tuple itself drives the insert
        auto it = grounding.relations.find(l.symbol);
        if (it == grounding.relations.end()) break;
        conjuncts.push_back("NOT EXISTS (SELECT 1 FROM " + it->second.table +
                            " x WHERE x.p = NEW.p)");
        break;
      }
      case LiteralKind::kCompare:
      case LiteralKind::kFunction:
        break;
    }
  }
  if (conjuncts.empty()) return std::string("TRUE");
  return Join(conjuncts, " AND ");
}

// One INSERT statement into the physical table grounded for `head`.
Result<std::string> InsertStatement(const Rule& rule,
                                    const SqlGrounding& grounding) {
  auto it = grounding.relations.find(rule.head.predicate);
  if (it == grounding.relations.end()) {
    return Status::NotFound("no SQL grounding for " + rule.head.predicate);
  }
  const SqlRelation& rel = it->second;
  std::vector<std::string> columns = {"p"};
  std::vector<std::string> values = {"NEW.p"};
  for (size_t i = 0; i < rel.arg_columns.size(); ++i) {
    for (const std::string& col : rel.arg_columns[i]) {
      columns.push_back(col);
      values.push_back("NEW." + col);
    }
  }
  // Function literals supply computed values for their output column.
  for (const Literal& l : rule.body) {
    if (l.kind != LiteralKind::kFunction) continue;
    auto fn = grounding.function_sql.find(l.symbol);
    if (fn == grounding.function_sql.end()) continue;
    for (std::string& v : values) {
      if (v == "NEW." + l.out.name) v = "(" + fn->second + ")";
    }
  }
  return "INSERT INTO " + rel.table + "(" + Join(columns, ", ") +
         ") VALUES (" + Join(values, ", ") + ");";
}

}  // namespace

Result<std::string> GenerateDeltaCode(const VersionCatalog& catalog,
                                      SmoId id) {
  const SmoInstance& inst = catalog.smo(id);
  INVERDA_ASSIGN_OR_RETURN(SmoRules rules, RulesForSmo(*inst.smo));
  if (rules.gamma_tgt.rules.empty() && rules.gamma_src.rules.empty()) {
    return std::string("-- ") + inst.smo->ToString() +
           ": catalog-only, no delta code\n";
  }
  INVERDA_ASSIGN_OR_RETURN(SqlGrounding grounding,
                           GroundingForSmo(catalog, id, rules));

  std::string out = "-- Delta code for: " + inst.smo->ToString() + "\n";
  out += "-- Materialization: ";
  out += inst.materialized ? "target side\n\n" : "source side\n\n";

  // Views for the virtual side (reads), per Figure 7.
  const RuleSet& read_rules =
      inst.materialized ? rules.gamma_src : rules.gamma_tgt;
  const std::vector<std::string>& virtual_relations =
      inst.materialized ? rules.source_relations : rules.target_relations;
  for (const std::string& rel : virtual_relations) {
    Result<std::string> view = GenerateViewSql(read_rules, rel, grounding);
    if (view.ok()) {
      out += *view;
      out += "\n";
    }
  }

  // Triggers for writes on the virtual side: one per table version and DML
  // kind, realizing the update propagation of Section 6 (the insert rules
  // follow the Δ+ pattern of rules 52-54; updates and deletes reuse the
  // same routing with OLD-based predicates).
  const RuleSet& write_rules =
      inst.materialized ? rules.gamma_tgt : rules.gamma_src;
  for (const std::string& rel : virtual_relations) {
    auto grounded = grounding.relations.find(rel);
    if (grounded == grounding.relations.end()) continue;
    const std::string& view_name = grounded->second.table;

    std::string body;
    for (const Rule& rule : write_rules.rules) {
      Result<std::string> guard = RuleGuard(rule, grounding);
      Result<std::string> insert = InsertStatement(rule, grounding);
      if (!guard.ok() || !insert.ok()) continue;
      body += "  IF " + *guard + " THEN\n    " + *insert + "\n  END IF;\n";
    }
    if (body.empty()) continue;

    out += "CREATE OR REPLACE FUNCTION " + view_name +
           "_ins() RETURNS trigger AS $$\nBEGIN\n" + body +
           "  RETURN NEW;\nEND;\n$$ LANGUAGE plpgsql;\n";
    out += "CREATE TRIGGER " + view_name + "_insert INSTEAD OF INSERT ON " +
           view_name + "\n  FOR EACH ROW EXECUTE FUNCTION " + view_name +
           "_ins();\n";
    out += "CREATE OR REPLACE FUNCTION " + view_name +
           "_upd() RETURNS trigger AS $$\nBEGIN\n"
           "  -- delete OLD routing, then re-insert NEW\n" +
           body + "  RETURN NEW;\nEND;\n$$ LANGUAGE plpgsql;\n";
    out += "CREATE TRIGGER " + view_name + "_update INSTEAD OF UPDATE ON " +
           view_name + "\n  FOR EACH ROW EXECUTE FUNCTION " + view_name +
           "_upd();\n";
    out += "CREATE OR REPLACE FUNCTION " + view_name +
           "_del() RETURNS trigger AS $$\nBEGIN\n"
           "  DELETE FROM " +
           view_name + "_targets WHERE p = OLD.p;\n"
           "  RETURN OLD;\nEND;\n$$ LANGUAGE plpgsql;\n";
    out += "CREATE TRIGGER " + view_name + "_delete INSTEAD OF DELETE ON " +
           view_name + "\n  FOR EACH ROW EXECUTE FUNCTION " + view_name +
           "_del();\n\n";
  }
  return out;
}

Result<std::vector<std::string>> DeltaArtifactNames(
    const VersionCatalog& catalog, SmoId id) {
  const SmoInstance& inst = catalog.smo(id);
  INVERDA_ASSIGN_OR_RETURN(SmoRules rules, RulesForSmo(*inst.smo));
  std::vector<std::string> out;
  if (rules.gamma_tgt.rules.empty() && rules.gamma_src.rules.empty()) {
    return out;
  }
  INVERDA_ASSIGN_OR_RETURN(SqlGrounding grounding,
                           GroundingForSmo(catalog, id, rules));
  const std::vector<std::string>& virtual_relations =
      inst.materialized ? rules.source_relations : rules.target_relations;
  for (const std::string& rel : virtual_relations) {
    auto grounded = grounding.relations.find(rel);
    if (grounded == grounding.relations.end()) continue;
    const std::string& view_name = grounded->second.table;
    out.push_back("VIEW " + view_name);
    out.push_back("TRIGGER " + view_name + "_insert");
    out.push_back("TRIGGER " + view_name + "_update");
    out.push_back("TRIGGER " + view_name + "_delete");
  }
  return out;
}

Result<std::string> GenerateDeltaCodeForVersion(const VersionCatalog& catalog,
                                                const std::string& version) {
  INVERDA_ASSIGN_OR_RETURN(const SchemaVersionInfo* info,
                           catalog.FindVersion(version));
  // The SMOs on the actual access paths of the version's table versions
  // under the current materialization: the compiled plans' traversed-SMO
  // closures, instead of a private genealogy walk.
  plan::PlanCompiler compiler(&catalog, /*backend=*/nullptr);
  std::set<SmoId> smos;
  for (const auto& [name, tv] : info->tables) {
    (void)name;
    INVERDA_ASSIGN_OR_RETURN(plan::TvPlan compiled, compiler.Compile(tv));
    smos.insert(compiled.traversed_smos.begin(),
                compiled.traversed_smos.end());
  }
  std::string out;
  for (SmoId id : smos) {
    INVERDA_ASSIGN_OR_RETURN(std::string code, GenerateDeltaCode(catalog, id));
    out += code;
  }
  return out;
}

}  // namespace inverda
