#ifndef INVERDA_ADVISOR_ADVISOR_H_
#define INVERDA_ADVISOR_ADVISOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "obs/observability.h"
#include "util/status.h"

namespace inverda {

class Inverda;

/// The traffic-driven materialization advisor (docs/advisor.md) — the
/// paper's Section-8.2 DBA story made executable: pick the materialization
/// schema that minimizes the modeled cost of the *observed* workload, and
/// (opt-in) apply it through the online-migration path without stalling
/// clients.
///
/// Three parts compose:
///  - CostModel prices one SMO hop per kernel, either uniformly (every hop
///    costs 1, the seed advisor's metric) or from the observed per-kernel
///    latency histograms in the MetricsRegistry;
///  - WorkloadProfile is the per-table-version weight vector mined from the
///    access layer's per-version counters or the trace ring (reads and
///    writes weighted separately — propagation cost is asymmetric);
///  - ScoreMaterializations walks every valid materialization schema's
///    hypothetical route chains and ranks the candidates.
namespace advisor {

/// Per-SMO-hop cost table, keyed by kernel name ("identity", "column",
/// "partition", "vertical-pk", "join-pk", "fk", "cond"). Reads price a hop
/// with the kernel's derive cost, writes with its propagate cost.
struct CostModel {
  /// Cost of the physical access itself (identical for every candidate, so
  /// it only scales the projected improvement, never the ordering).
  double base_read = 1.0;
  double base_write = 1.0;

  std::map<std::string, double> derive_cost;
  std::map<std::string, double> propagate_cost;

  /// Total histogram samples behind the observed entries (0 for Uniform).
  int64_t observed_samples = 0;
  /// True when built from observed latencies (costs are nanoseconds);
  /// false for the uniform model (costs are SMO hops).
  bool observed = false;

  /// Every hop costs 1 regardless of kernel — the seed advisor's
  /// propagation-distance metric, and the fallback when nothing has been
  /// measured yet.
  static CostModel Uniform();

  /// Prices hops with the mean of each kernel's observed derive/propagate
  /// histogram (`kernel.<name>.derive_ns` / `.propagate_ns`), falling back
  /// to a fixed per-kernel default (rough relative magnitudes, in ns) for
  /// kernels with fewer than `min_samples` recordings. Enable detailed
  /// timing (MetricsRegistry::set_timing_enabled) to feed the histograms.
  static CostModel FromMetrics(const obs::MetricsSnapshot& snapshot,
                               int64_t min_samples = 8);

  double DeriveCost(const std::string& kernel) const;
  double PropagateCost(const std::string& kernel) const;
};

/// One table version's share of the observed (or declared) workload.
struct ProfileEntry {
  TvId tv = -1;
  std::string name;  ///< catalog TvLabel, as EXPLAIN/TRACE print it
  double read_weight = 0.0;
  double write_weight = 0.0;
};

/// Per-table-version weight vector; read and write weights jointly sum
/// to 1. Built by the profiler functions below, all of which validate and
/// normalize through the same code path.
struct WorkloadProfile {
  std::vector<ProfileEntry> entries;  ///< heaviest first
  int64_t observed_reads = 0;         ///< raw op counts behind the weights
  int64_t observed_writes = 0;
  std::string source;  ///< "explicit-weights" | "access-counters" | "trace-ring"
};

/// Which signal the profiler mines when no explicit weights are given.
enum class ProfileWindow {
  /// The access layer's per-version op counters: everything since startup
  /// (or the last ResetMetrics). The default.
  kLifetime,
  /// The trace ring's most recent completed operations (requires tracing
  /// enabled; at most Tracer::capacity() ops). The "what is hot right now"
  /// window.
  kRecent,
};

struct AdviseOptions {
  ProfileWindow window = ProfileWindow::kLifetime;

  /// Explicit per-version workload shares; when non-empty the profiler is
  /// bypassed entirely (the legacy RecommendMaterialization surface).
  /// Validated and normalized: negative, empty-after-merge, or all-zero
  /// weight vectors are rejected with a diagnostic Status.
  std::map<std::string, double> version_weights;
  /// How explicit weights split into reads vs writes (profiled windows
  /// carry their own split). Must be within [0, 1].
  double read_fraction = 1.0;

  /// Price hops with observed kernel latencies when available; false gives
  /// the uniform hop model unconditionally.
  bool use_observed_latencies = true;
  /// Minimum histogram samples before an observed mean replaces the
  /// per-kernel default cost.
  int64_t min_kernel_samples = 8;

  /// Candidate-SMO cap forwarded to EnumerateValidMaterializations.
  int candidate_limit = 20;
};

/// One scored candidate materialization schema.
struct CandidateScore {
  std::set<SmoId> materialization;
  std::string label;  ///< "{Kind#id, ...}" or "{}"
  double read_cost = 0.0;
  double write_cost = 0.0;
  double total_cost = 0.0;  ///< weighted: what the ranking sorts by
  /// (cost - current_cost) / current_cost: negative means cheaper than the
  /// schema currently in effect.
  double delta_vs_current = 0.0;
  bool is_current = false;
};

/// The ranked report Advise/ADVISE return: every valid candidate, best
/// first, plus the profile and model that produced the scores.
struct AdviseReport {
  std::vector<CandidateScore> ranked;  ///< best (lowest cost) first
  WorkloadProfile profile;
  /// True when the scores are in observed nanoseconds; false when they are
  /// uniform hop counts.
  bool observed_costs = false;
  double current_cost = 0.0;
  /// (current - best) / current: fraction of modeled cost the best
  /// candidate saves over the current schema (0 when current is best).
  double projected_improvement = 0.0;

  const CandidateScore& best() const { return ranked.front(); }
  /// The entry whose materialization is currently in effect.
  const CandidateScore& current() const;

  std::string ToText() const;
  std::string ToJson() const;
};

/// The single weight sanity gate: rejects negative weights, empty vectors
/// and all-zero vectors with a diagnostic Status; scales the survivors to
/// sum 1. Every profiler path funnels through this.
Result<std::map<std::string, double>> NormalizeWeights(
    const std::map<std::string, double>& weights);

/// Profile from explicit per-version shares (weights validated through
/// NormalizeWeights; a version's weight splits evenly over its tables and
/// into reads/writes by `read_fraction`).
Result<WorkloadProfile> ProfileFromWeights(
    const VersionCatalog& catalog,
    const std::map<std::string, double>& version_weights,
    double read_fraction);

/// Profile from the access layer's per-version (reads, writes) counters.
/// Counts of table versions no longer in the catalog are dropped; an
/// all-zero signal is rejected (run traffic first, or pass weights).
Result<WorkloadProfile> ProfileFromCounters(
    const VersionCatalog& catalog,
    const std::map<TvId, std::pair<int64_t, int64_t>>& counts);

/// Profile from the trace ring: top-level "scan"/"find" spans count as
/// reads, "apply" spans as writes, mapped back to table versions by their
/// catalog label. Rejects an empty ring (enable TRACE and run traffic).
Result<WorkloadProfile> ProfileFromTrace(const VersionCatalog& catalog,
                                         const obs::Tracer& tracer);

/// The scoring core: enumerates every valid materialization schema (the
/// catalog's validity rules), walks each candidate's hypothetical route
/// chain per profiled table version, prices the hops through `model`, and
/// returns the ranked report. Pure function of the catalog — callers hold
/// whatever lock the catalog needs.
Result<AdviseReport> ScoreMaterializations(const VersionCatalog& catalog,
                                           const WorkloadProfile& profile,
                                           const CostModel& model,
                                           int candidate_limit = 20);

/// The facade-attached advisor: Recommend() under the engine's own lock
/// and signals, plus the opt-in auto-materialize mode that turns the
/// recommendation loop into a background self-management policy executed
/// through the online-migration path.
class Advisor {
 public:
  Advisor(Inverda* owner, obs::Observability* obs);

  Advisor(const Advisor&) = delete;
  Advisor& operator=(const Advisor&) = delete;

  /// Profiles the workload, builds the cost model, scores every candidate.
  /// Takes the facade's shared catalog lock (callable concurrently with
  /// client traffic; must not be called under the exclusive DDL lock).
  Result<AdviseReport> Recommend(const AdviseOptions& options = {});

  // --- auto-materialize (docs/advisor.md) -----------------------------------

  /// Master switch. Off by default. When on, every `auto_check_interval`
  /// completed facade operations one client thread evaluates Recommend()
  /// and — if the best candidate beats the current schema by at least
  /// `auto_improvement_threshold` — starts an online migration to it
  /// (non-blocking; traffic keeps flowing while the coordinator works).
  void set_auto_materialize_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool auto_materialize_enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Minimum projected improvement (fraction of current modeled cost, e.g.
  /// 0.10 = 10%) before an automatic migration fires. Default 0.10.
  void set_auto_improvement_threshold(double fraction) {
    threshold_.store(fraction, std::memory_order_relaxed);
  }
  double auto_improvement_threshold() const {
    return threshold_.load(std::memory_order_relaxed);
  }

  /// Operations between evaluations (default 256) and after an applied
  /// migration before the next evaluation (default 4096). Measured in
  /// completed facade operations, so tests are deterministic.
  void set_auto_check_interval(int64_t ops) {
    check_interval_.store(ops > 0 ? ops : 1, std::memory_order_relaxed);
  }
  int64_t auto_check_interval() const {
    return check_interval_.load(std::memory_order_relaxed);
  }
  void set_auto_cooldown(int64_t ops) {
    cooldown_.store(ops > 0 ? ops : 0, std::memory_order_relaxed);
  }
  int64_t auto_cooldown() const {
    return cooldown_.load(std::memory_order_relaxed);
  }

  /// What one evaluation did.
  enum class AutoAction {
    kBusy,        ///< another evaluation holds the tick lock
    kRetryLater,  ///< a migration is in flight (or admission raced a DDL):
                  ///< nothing applied, re-check scheduled after one interval
    kKeep,        ///< current schema is (close enough to) the best
    kApplied,     ///< online migration to the best candidate started
    kError,       ///< Recommend failed (e.g. no observed workload yet)
  };
  struct AutoTickResult {
    AutoAction action = AutoAction::kKeep;
    std::string detail;
  };

  /// Forces one evaluation now, ignoring the enabled flag and the
  /// interval/cooldown schedule (tests, shell). The traffic-driven path
  /// runs the same evaluation when an operation crosses the schedule.
  AutoTickResult AutoTick();

  /// Called by the facade after every completed top-level operation, with
  /// no locks held: one relaxed counter bump, plus the evaluation when it
  /// falls due. Never blocks other clients (the tick lock is try-only).
  void OnOperationFinished();

  /// Point-in-time auto-materialize state (shell ADVISE AUTO, tests).
  struct AutoStatus {
    bool enabled = false;
    int64_t ops = 0;            ///< operations observed so far
    int64_t next_check_at = 0;  ///< op count at which the next tick is due
    int64_t evaluations = 0;
    int64_t applied = 0;
    int64_t retries = 0;
    std::string last_action;
  };
  AutoStatus auto_status() const;

 private:
  AutoTickResult TickNow();
  void RecordAction(const AutoTickResult& result);

  Inverda* owner_;
  obs::Observability* obs_;

  obs::Counter* recommendations_;
  obs::Counter* auto_evaluations_;
  obs::Counter* auto_applied_;
  obs::Counter* auto_retries_;
  obs::Histogram* advise_ns_;

  std::atomic<bool> enabled_{false};
  std::atomic<double> threshold_{0.10};
  std::atomic<int64_t> check_interval_{256};
  std::atomic<int64_t> cooldown_{4096};

  std::atomic<int64_t> ops_{0};
  std::atomic<int64_t> next_check_at_{0};
  std::atomic<int64_t> evaluations_{0};
  std::atomic<int64_t> applied_{0};
  std::atomic<int64_t> retries_{0};

  /// Serializes evaluations; OnOperationFinished only try-locks, so client
  /// threads never queue behind an evaluation in progress.
  std::mutex tick_mu_;
  mutable std::mutex state_mu_;  ///< guards last_action_
  std::string last_action_;
};

/// RAII hook the facade's DML wrappers declare *before* their shared
/// catalog lock: the destructor then runs strictly after the lock is
/// released, so an evaluation that starts a migration (exclusive lock) can
/// never self-deadlock.
class AutoTickGuard {
 public:
  explicit AutoTickGuard(Advisor* advisor) : advisor_(advisor) {}
  ~AutoTickGuard() { advisor_->OnOperationFinished(); }
  AutoTickGuard(const AutoTickGuard&) = delete;
  AutoTickGuard& operator=(const AutoTickGuard&) = delete;

 private:
  Advisor* advisor_;
};

}  // namespace advisor
}  // namespace inverda

#endif  // INVERDA_ADVISOR_ADVISOR_H_
