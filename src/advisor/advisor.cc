#include "advisor/advisor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "inverda/inverda.h"
#include "mapping/side.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace inverda {
namespace advisor {
namespace {

std::string Fmt(double v, const char* spec = "%.1f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

std::string Pct(double fraction) { return Fmt(fraction * 100.0) + "%"; }

std::string JsonNum(double v) {
  if (!std::isfinite(v)) return "0";
  return Fmt(v, "%.6g");
}

std::string LabelFor(const VersionCatalog& catalog, const std::set<SmoId>& m) {
  std::vector<std::string> parts;
  for (SmoId id : m) {
    parts.push_back(SmoKindName(catalog.smo(id).smo->kind()) +
                    std::string("#") + std::to_string(id));
  }
  if (parts.empty()) return "{}";
  return "{" + Join(parts, ", ") + "}";
}

/// The hypothetical route chain of `tv` under materialization `m`: the
/// kernel name of every SMO hop between the table version and its data
/// under that schema (empty when `tv` would be physical). The walk mirrors
/// the plan compiler's route resolution — CREATE TABLE is always in the
/// schema, DROP TABLE never — without compiling anything.
Result<std::vector<std::string>> RouteKernelsUnder(
    const VersionCatalog& catalog, const std::set<SmoId>& m, TvId tv) {
  auto in_schema = [&](SmoId id) {
    const SmoInstance& inst = catalog.smo(id);
    if (inst.smo->kind() == SmoKind::kCreateTable) return true;
    if (inst.smo->kind() == SmoKind::kDropTable) return false;
    return m.count(id) > 0;
  };
  std::vector<std::string> kernels;
  TvId current = tv;
  while (kernels.size() < 1000) {
    const TableVersion& info = catalog.table_version(current);
    bool incoming = in_schema(info.incoming);
    SmoId forward = -1;
    for (SmoId out : info.outgoing) {
      if (in_schema(out)) forward = out;
    }
    if (incoming && forward < 0) return kernels;  // physical here
    const SmoId hop = forward >= 0 ? forward : info.incoming;
    const SmoInstance& inst = catalog.smo(hop);
    INVERDA_ASSIGN_OR_RETURN(const Kernel* kernel, KernelForSmo(*inst.smo));
    kernels.push_back(kernel->name());
    if (forward >= 0) {
      if (inst.targets.empty()) return kernels;
      current = inst.targets[0];
    } else {
      if (inst.sources.empty()) return kernels;
      current = inst.sources[0];
    }
  }
  return Status::Internal("materialization route walk did not terminate");
}

/// Shared tail of the profiler builders: converts raw per-tv (reads,
/// writes) counts into a normalized, heaviest-first profile.
Result<WorkloadProfile> ProfileFromTvCounts(
    const VersionCatalog& catalog,
    const std::map<TvId, std::pair<double, double>>& counts,
    std::string source) {
  double total = 0.0;
  for (const auto& [tv, rw] : counts) {
    (void)tv;
    if (rw.first < 0.0 || rw.second < 0.0) {
      return Status::InvalidArgument("advisor: negative workload weight");
    }
    total += rw.first + rw.second;
  }
  if (counts.empty() || total <= 0.0) {
    return Status::InvalidArgument(
        "advisor: empty workload signal (" + source +
        "): run traffic first or pass explicit version weights");
  }
  WorkloadProfile profile;
  profile.source = std::move(source);
  for (const auto& [tv, rw] : counts) {
    ProfileEntry entry;
    entry.tv = tv;
    entry.name = catalog.TvLabel(tv);
    entry.read_weight = rw.first / total;
    entry.write_weight = rw.second / total;
    profile.entries.push_back(std::move(entry));
  }
  std::stable_sort(profile.entries.begin(), profile.entries.end(),
                   [](const ProfileEntry& a, const ProfileEntry& b) {
                     return a.read_weight + a.write_weight >
                            b.read_weight + b.write_weight;
                   });
  return profile;
}

}  // namespace

// --- cost model -------------------------------------------------------------

CostModel CostModel::Uniform() {
  CostModel model;
  model.base_read = 1.0;
  model.base_write = 1.0;
  model.observed = false;
  return model;
}

CostModel CostModel::FromMetrics(const obs::MetricsSnapshot& snapshot,
                                 int64_t min_samples) {
  // Rough relative per-hop magnitudes in nanoseconds, used until a kernel
  // has enough recorded samples to speak for itself. The id-generating
  // vertical kernels (fk) and condition evaluation (cond) dominate; pure
  // column maps are cheap.
  static const std::map<std::string, double> kDefaults = {
      {"identity", 150.0},    {"column", 250.0}, {"partition", 700.0},
      {"vertical-pk", 800.0}, {"join-pk", 800.0}, {"fk", 1600.0},
      {"cond", 2400.0}};
  CostModel model;
  model.observed = true;
  model.base_read = 400.0;
  model.base_write = 600.0;
  for (const auto& [kernel, fallback] : kDefaults) {
    model.derive_cost[kernel] = fallback;
    model.propagate_cost[kernel] = fallback;
    const obs::Histogram::Snapshot* derive =
        snapshot.histogram("kernel." + kernel + ".derive_ns");
    if (derive != nullptr && derive->count >= min_samples) {
      model.derive_cost[kernel] = derive->mean_ns();
      model.observed_samples += derive->count;
    }
    const obs::Histogram::Snapshot* propagate =
        snapshot.histogram("kernel." + kernel + ".propagate_ns");
    if (propagate != nullptr && propagate->count >= min_samples) {
      model.propagate_cost[kernel] = propagate->mean_ns();
      model.observed_samples += propagate->count;
    }
  }
  return model;
}

double CostModel::DeriveCost(const std::string& kernel) const {
  auto it = derive_cost.find(kernel);
  if (it != derive_cost.end()) return it->second;
  return observed ? 500.0 : 1.0;
}

double CostModel::PropagateCost(const std::string& kernel) const {
  auto it = propagate_cost.find(kernel);
  if (it != propagate_cost.end()) return it->second;
  return observed ? 500.0 : 1.0;
}

// --- profilers --------------------------------------------------------------

Result<std::map<std::string, double>> NormalizeWeights(
    const std::map<std::string, double>& weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("advisor: empty weight vector");
  }
  double total = 0.0;
  for (const auto& [name, weight] : weights) {
    if (weight < 0.0) {
      return Status::InvalidArgument("advisor: negative weight for version '" +
                                     name + "' (" + Fmt(weight, "%g") + ")");
    }
    total += weight;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("advisor: all-zero weight vector");
  }
  std::map<std::string, double> normalized;
  for (const auto& [name, weight] : weights) {
    normalized[name] = weight / total;
  }
  return normalized;
}

Result<WorkloadProfile> ProfileFromWeights(
    const VersionCatalog& catalog,
    const std::map<std::string, double>& version_weights,
    double read_fraction) {
  if (read_fraction < 0.0 || read_fraction > 1.0) {
    return Status::InvalidArgument("advisor: read_fraction must be in [0, 1]");
  }
  auto normalized = NormalizeWeights(version_weights);
  if (!normalized.ok()) return normalized.status();
  const std::map<std::string, double>& weights = *normalized;
  std::map<TvId, std::pair<double, double>> counts;
  for (const auto& [version, weight] : weights) {
    INVERDA_ASSIGN_OR_RETURN(const SchemaVersionInfo* info,
                             catalog.FindVersion(version));
    if (info->tables.empty()) continue;
    const double share = weight / static_cast<double>(info->tables.size());
    for (const auto& [name, tv] : info->tables) {
      (void)name;
      counts[tv].first += share * read_fraction;
      counts[tv].second += share * (1.0 - read_fraction);
    }
  }
  return ProfileFromTvCounts(catalog, counts, "explicit-weights");
}

Result<WorkloadProfile> ProfileFromCounters(
    const VersionCatalog& catalog,
    const std::map<TvId, std::pair<int64_t, int64_t>>& counts) {
  std::map<TvId, std::pair<double, double>> live;
  int64_t reads = 0;
  int64_t writes = 0;
  for (TvId tv : catalog.AllTableVersions()) {
    auto it = counts.find(tv);
    if (it == counts.end()) continue;
    if (it->second.first == 0 && it->second.second == 0) continue;
    live[tv] = {static_cast<double>(it->second.first),
                static_cast<double>(it->second.second)};
    reads += it->second.first;
    writes += it->second.second;
  }
  INVERDA_ASSIGN_OR_RETURN(WorkloadProfile profile,
                           ProfileFromTvCounts(catalog, live,
                                               "access-counters"));
  profile.observed_reads = reads;
  profile.observed_writes = writes;
  return profile;
}

Result<WorkloadProfile> ProfileFromTrace(const VersionCatalog& catalog,
                                         const obs::Tracer& tracer) {
  std::map<std::string, TvId> by_label;
  for (TvId tv : catalog.AllTableVersions()) {
    by_label[catalog.TvLabel(tv)] = tv;
  }
  std::map<TvId, std::pair<double, double>> counts;
  int64_t reads = 0;
  int64_t writes = 0;
  for (const auto& span : tracer.Last(tracer.capacity())) {
    auto it = by_label.find(span->label);
    if (it == by_label.end()) continue;  // dropped since, or unlabeled
    if (span->name == "scan" || span->name == "find") {
      counts[it->second].first += 1.0;
      ++reads;
    } else if (span->name == "apply") {
      counts[it->second].second += 1.0;
      ++writes;
    }
  }
  if (counts.empty()) {
    return Status::InvalidState(
        "advisor: trace ring has no usable operations — enable tracing "
        "(TRACE ON) and run traffic, or use the lifetime window");
  }
  INVERDA_ASSIGN_OR_RETURN(WorkloadProfile profile,
                           ProfileFromTvCounts(catalog, counts, "trace-ring"));
  profile.observed_reads = reads;
  profile.observed_writes = writes;
  return profile;
}

// --- scoring ----------------------------------------------------------------

Result<AdviseReport> ScoreMaterializations(const VersionCatalog& catalog,
                                           const WorkloadProfile& profile,
                                           const CostModel& model,
                                           int candidate_limit) {
  if (profile.entries.empty()) {
    return Status::InvalidArgument("advisor: empty workload profile");
  }
  INVERDA_ASSIGN_OR_RETURN(
      std::vector<std::set<SmoId>> candidates,
      catalog.EnumerateValidMaterializations(candidate_limit));
  if (candidates.empty()) {
    return Status::InvalidState("no valid materialization schema found");
  }
  const std::set<SmoId> current = catalog.CurrentMaterialization();
  bool saw_current = false;
  for (const std::set<SmoId>& m : candidates) {
    if (m == current) saw_current = true;
  }
  // The current schema is always valid; keep it in the report even when
  // the enumeration cap clipped it out.
  if (!saw_current) candidates.push_back(current);

  AdviseReport report;
  report.profile = profile;
  report.observed_costs = model.observed;
  for (const std::set<SmoId>& m : candidates) {
    CandidateScore score;
    score.materialization = m;
    score.label = LabelFor(catalog, m);
    score.is_current = (m == current);
    for (const ProfileEntry& entry : profile.entries) {
      INVERDA_ASSIGN_OR_RETURN(std::vector<std::string> kernels,
                               RouteKernelsUnder(catalog, m, entry.tv));
      double read_cost = model.base_read;
      double write_cost = model.base_write;
      for (const std::string& kernel : kernels) {
        read_cost += model.DeriveCost(kernel);
        write_cost += model.PropagateCost(kernel);
      }
      score.read_cost += entry.read_weight * read_cost;
      score.write_cost += entry.write_weight * write_cost;
    }
    score.total_cost = score.read_cost + score.write_cost;
    report.ranked.push_back(std::move(score));
  }
  std::stable_sort(report.ranked.begin(), report.ranked.end(),
                   [](const CandidateScore& a, const CandidateScore& b) {
                     return a.total_cost < b.total_cost;
                   });
  for (const CandidateScore& score : report.ranked) {
    if (score.is_current) report.current_cost = score.total_cost;
  }
  for (CandidateScore& score : report.ranked) {
    score.delta_vs_current =
        report.current_cost > 0.0
            ? (score.total_cost - report.current_cost) / report.current_cost
            : 0.0;
  }
  report.projected_improvement =
      report.current_cost > 0.0
          ? (report.current_cost - report.best().total_cost) /
                report.current_cost
          : 0.0;
  return report;
}

const CandidateScore& AdviseReport::current() const {
  for (const CandidateScore& score : ranked) {
    if (score.is_current) return score;
  }
  return ranked.front();
}

std::string AdviseReport::ToText() const {
  std::string out;
  out += "materialization advisor — workload: " + profile.source;
  if (profile.observed_reads + profile.observed_writes > 0) {
    out += " (" + std::to_string(profile.observed_reads) + " reads, " +
           std::to_string(profile.observed_writes) + " writes)";
  }
  out += ", costs: ";
  out += observed_costs ? "modeled ns/op" : "uniform hops";
  out += "\n  profile:\n";
  for (const ProfileEntry& entry : profile.entries) {
    out += "    " + entry.name + "  reads " + Pct(entry.read_weight) +
           "  writes " + Pct(entry.write_weight) + "\n";
  }
  out += "  candidates (best first):\n";
  for (size_t i = 0; i < ranked.size(); ++i) {
    const CandidateScore& score = ranked[i];
    out += (i == 0) ? "   -> " : "      ";
    out += score.label + "  cost " + Fmt(score.total_cost) + "  delta " +
           (score.delta_vs_current >= 0 ? "+" : "") +
           Pct(score.delta_vs_current);
    if (score.is_current) out += "  (current)";
    if (i == 0) out += "  (recommended)";
    out += "\n";
  }
  if (best().is_current) {
    out += "  recommendation: keep the current materialization " +
           best().label + "\n";
  } else {
    out += "  recommendation: MATERIALIZE " + best().label +
           " — projected improvement " + Pct(projected_improvement) + "\n";
  }
  return out;
}

std::string AdviseReport::ToJson() const {
  std::string out = "{\n";
  out += "  \"source\": \"" + profile.source + "\",\n";
  out += "  \"observed_costs\": ";
  out += observed_costs ? "true" : "false";
  out += ",\n";
  out += "  \"observed_reads\": " + std::to_string(profile.observed_reads) +
         ",\n";
  out += "  \"observed_writes\": " + std::to_string(profile.observed_writes) +
         ",\n";
  out += "  \"current_cost\": " + JsonNum(current_cost) + ",\n";
  out += "  \"projected_improvement\": " + JsonNum(projected_improvement) +
         ",\n";
  out += "  \"recommended\": \"" + best().label + "\",\n";
  out += "  \"profile\": [";
  for (size_t i = 0; i < profile.entries.size(); ++i) {
    const ProfileEntry& entry = profile.entries[i];
    if (i > 0) out += ",";
    out += "\n    {\"table\": \"" + entry.name +
           "\", \"read_weight\": " + JsonNum(entry.read_weight) +
           ", \"write_weight\": " + JsonNum(entry.write_weight) + "}";
  }
  out += "\n  ],\n";
  out += "  \"candidates\": [";
  for (size_t i = 0; i < ranked.size(); ++i) {
    const CandidateScore& score = ranked[i];
    if (i > 0) out += ",";
    out += "\n    {\"label\": \"" + score.label +
           "\", \"total_cost\": " + JsonNum(score.total_cost) +
           ", \"read_cost\": " + JsonNum(score.read_cost) +
           ", \"write_cost\": " + JsonNum(score.write_cost) +
           ", \"delta_vs_current\": " + JsonNum(score.delta_vs_current) +
           ", \"is_current\": " + (score.is_current ? "true" : "false") +
           ", \"recommended\": " + (i == 0 ? "true" : "false") + "}";
  }
  out += "\n  ]\n}";
  return out;
}

// --- facade-attached advisor ------------------------------------------------

Advisor::Advisor(Inverda* owner, obs::Observability* obs)
    : owner_(owner), obs_(obs) {
  obs::MetricsRegistry& m = obs_->metrics;
  recommendations_ = m.counter("advisor.recommendations");
  auto_evaluations_ = m.counter("advisor.auto_evaluations");
  auto_applied_ = m.counter("advisor.auto_applied");
  auto_retries_ = m.counter("advisor.auto_retries");
  advise_ns_ = m.histogram("advisor.advise_ns");
}

Result<AdviseReport> Advisor::Recommend(const AdviseOptions& options) {
  obs::ScopedTimer timer(advise_ns_);
  recommendations_->Add(1);
  // Shared like DML: scoring only reads the catalog and the obs signals,
  // so it runs concurrently with client traffic.
  std::shared_lock<std::shared_mutex> dml(owner_->catalog_mu_);
  const VersionCatalog& catalog = owner_->catalog_;
  WorkloadProfile profile;
  if (!options.version_weights.empty()) {
    INVERDA_ASSIGN_OR_RETURN(
        profile, ProfileFromWeights(catalog, options.version_weights,
                                    options.read_fraction));
  } else if (options.window == ProfileWindow::kRecent) {
    INVERDA_ASSIGN_OR_RETURN(profile,
                             ProfileFromTrace(catalog, obs_->tracer));
  } else {
    INVERDA_ASSIGN_OR_RETURN(
        profile,
        ProfileFromCounters(catalog, owner_->access_.AccessProfile()));
  }
  const CostModel model =
      options.use_observed_latencies
          ? CostModel::FromMetrics(obs_->metrics.Snapshot(),
                                   options.min_kernel_samples)
          : CostModel::Uniform();
  return ScoreMaterializations(catalog, profile, model,
                               options.candidate_limit);
}

void Advisor::OnOperationFinished() {
  const int64_t n = ops_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!enabled_.load(std::memory_order_relaxed)) return;
  if (n < next_check_at_.load(std::memory_order_relaxed)) return;
  (void)TickNow();
}

Advisor::AutoTickResult Advisor::AutoTick() { return TickNow(); }

Advisor::AutoTickResult Advisor::TickNow() {
  std::unique_lock<std::mutex> tick(tick_mu_, std::try_to_lock);
  if (!tick.owns_lock()) {
    return {AutoAction::kBusy, "another evaluation is in flight"};
  }
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  auto_evaluations_->Add(1);
  const int64_t now = ops_.load(std::memory_order_relaxed);
  const int64_t interval = check_interval_.load(std::memory_order_relaxed);
  AutoTickResult result;
  if (owner_->MigrationState().active) {
    // Retry-after: DDL (and with it a second migration) is rejected while
    // one is in flight, so push the next evaluation out one interval
    // instead of burning a tick per operation.
    retries_.fetch_add(1, std::memory_order_relaxed);
    auto_retries_->Add(1);
    next_check_at_.store(now + interval, std::memory_order_relaxed);
    result = {AutoAction::kRetryLater,
              "migration in flight; re-check after " +
                  std::to_string(interval) + " ops"};
    RecordAction(result);
    return result;
  }
  Result<AdviseReport> report = Recommend();
  if (!report.ok()) {
    next_check_at_.store(now + interval, std::memory_order_relaxed);
    result = {AutoAction::kError, report.status().ToString()};
    RecordAction(result);
    return result;
  }
  const CandidateScore& best = report->best();
  const double threshold = threshold_.load(std::memory_order_relaxed);
  if (best.is_current || report->projected_improvement < threshold) {
    next_check_at_.store(now + interval, std::memory_order_relaxed);
    result = {AutoAction::kKeep,
              "keeping " + report->current().label + " (improvement " +
                  Pct(report->projected_improvement) + " < threshold " +
                  Pct(threshold) + ")"};
    RecordAction(result);
    return result;
  }
  MaterializeRequest request;
  request.schema = best.materialization;
  request.online = true;
  request.wait = false;
  Status started = owner_->Materialize(request);
  if (!started.ok()) {
    // Lost an admission race (concurrent DDL or a migration admitted
    // between our check and the start): same retry-after handling.
    retries_.fetch_add(1, std::memory_order_relaxed);
    auto_retries_->Add(1);
    next_check_at_.store(now + interval, std::memory_order_relaxed);
    result = {AutoAction::kRetryLater, started.ToString()};
    RecordAction(result);
    return result;
  }
  applied_.fetch_add(1, std::memory_order_relaxed);
  auto_applied_->Add(1);
  next_check_at_.store(now + cooldown_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  result = {AutoAction::kApplied,
            "online migration to " + best.label + " started (projected " +
                Pct(report->projected_improvement) + ")"};
  RecordAction(result);
  return result;
}

void Advisor::RecordAction(const AutoTickResult& result) {
  std::lock_guard<std::mutex> lock(state_mu_);
  last_action_ = result.detail;
}

Advisor::AutoStatus Advisor::auto_status() const {
  AutoStatus status;
  status.enabled = enabled_.load(std::memory_order_relaxed);
  status.ops = ops_.load(std::memory_order_relaxed);
  status.next_check_at = next_check_at_.load(std::memory_order_relaxed);
  status.evaluations = evaluations_.load(std::memory_order_relaxed);
  status.applied = applied_.load(std::memory_order_relaxed);
  status.retries = retries_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(state_mu_);
  status.last_action = last_action_;
  return status;
}

}  // namespace advisor
}  // namespace inverda
