#include "schema/schema.h"

#include "util/strings.h"

namespace inverda {

std::optional<int> TableSchema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return static_cast<int>(i);
  }
  return std::nullopt;
}

std::vector<std::string> TableSchema::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const Column& c : columns_) names.push_back(c.name);
  return names;
}

Status TableSchema::AddColumn(Column column) {
  if (FindColumn(column.name)) {
    return Status::AlreadyExists("column " + column.name + " already exists in " +
                                 name_);
  }
  columns_.push_back(std::move(column));
  return Status::OK();
}

Status TableSchema::DropColumn(const std::string& name) {
  std::optional<int> idx = FindColumn(name);
  if (!idx) return Status::NotFound("column " + name + " not in " + name_);
  columns_.erase(columns_.begin() + *idx);
  return Status::OK();
}

Status TableSchema::RenameColumn(const std::string& from,
                                 const std::string& to) {
  std::optional<int> idx = FindColumn(from);
  if (!idx) return Status::NotFound("column " + from + " not in " + name_);
  if (FindColumn(to)) {
    return Status::AlreadyExists("column " + to + " already exists in " +
                                 name_);
  }
  columns_[static_cast<size_t>(*idx)].name = to;
  return Status::OK();
}

Result<std::vector<Column>> TableSchema::SelectColumns(
    const std::vector<std::string>& names) const {
  std::vector<Column> out;
  out.reserve(names.size());
  for (const std::string& n : names) {
    std::optional<int> idx = FindColumn(n);
    if (!idx) return Status::NotFound("column " + n + " not in " + name_);
    out.push_back(columns_[static_cast<size_t>(*idx)]);
  }
  return out;
}

Result<std::vector<int>> TableSchema::ColumnIndexes(
    const std::vector<std::string>& names) const {
  std::vector<int> out;
  out.reserve(names.size());
  for (const std::string& n : names) {
    std::optional<int> idx = FindColumn(n);
    if (!idx) return Status::NotFound("column " + n + " not in " + name_);
    out.push_back(*idx);
  }
  return out;
}

std::string TableSchema::ToString() const {
  std::vector<std::string> cols;
  cols.reserve(columns_.size());
  for (const Column& c : columns_) {
    cols.push_back(c.name + " " + DataTypeName(c.type));
  }
  return name_ + "(" + Join(cols, ", ") + ")";
}

}  // namespace inverda
