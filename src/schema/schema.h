#ifndef INVERDA_SCHEMA_SCHEMA_H_
#define INVERDA_SCHEMA_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "types/value.h"
#include "util/status.h"

namespace inverda {

/// A named, typed column of a table version.
struct Column {
  std::string name;
  DataType type = DataType::kInt64;

  bool operator==(const Column& other) const {
    return name == other.name && type == other.type;
  }
};

/// The schema of a table (version): a name plus an ordered column list.
/// Every relation additionally carries the InVerDa-managed identifier `p`,
/// which is implicit and not listed here.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<Column> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<Column>& columns() const { return columns_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  /// Index of column `name` (case-insensitive), or nullopt.
  std::optional<int> FindColumn(const std::string& name) const;

  /// Column names in order.
  std::vector<std::string> ColumnNames() const;

  /// Appends a column. Fails with AlreadyExists on a name collision.
  Status AddColumn(Column column);

  /// Removes the column called `name`. Fails with NotFound if absent.
  Status DropColumn(const std::string& name);

  /// Renames column `from` to `to`.
  Status RenameColumn(const std::string& from, const std::string& to);

  /// The subset of columns named in `names`, in the order of `names`.
  /// Fails with NotFound on an unknown name.
  Result<std::vector<Column>> SelectColumns(
      const std::vector<std::string>& names) const;

  /// Positional indexes of `names` within this schema.
  Result<std::vector<int>> ColumnIndexes(
      const std::vector<std::string>& names) const;

  bool operator==(const TableSchema& other) const {
    return name_ == other.name_ && columns_ == other.columns_;
  }

  /// "Name(c1 INT, c2 TEXT)".
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<Column> columns_;
};

}  // namespace inverda

#endif  // INVERDA_SCHEMA_SCHEMA_H_
