#include "datalog/rule.h"

namespace inverda {
namespace datalog {

Literal Literal::Relation(std::string predicate, std::vector<Term> args,
                          bool negated) {
  Literal l;
  l.kind = LiteralKind::kRelation;
  l.negated = negated;
  l.symbol = std::move(predicate);
  l.args = std::move(args);
  return l;
}

Literal Literal::Condition(std::string condition, std::vector<Term> args,
                           bool negated) {
  Literal l;
  l.kind = LiteralKind::kCondition;
  l.negated = negated;
  l.symbol = std::move(condition);
  l.args = std::move(args);
  return l;
}

Literal Literal::Function(Term out, std::string function,
                          std::vector<Term> args) {
  Literal l;
  l.kind = LiteralKind::kFunction;
  l.symbol = std::move(function);
  l.args = std::move(args);
  l.out = std::move(out);
  return l;
}

Literal Literal::Equal(Term lhs, Term rhs) {
  Literal l;
  l.kind = LiteralKind::kCompare;
  l.compare_equal = true;
  l.args = {std::move(lhs), std::move(rhs)};
  return l;
}

Literal Literal::NotEqual(Term lhs, Term rhs) {
  Literal l;
  l.kind = LiteralKind::kCompare;
  l.compare_equal = false;
  l.args = {std::move(lhs), std::move(rhs)};
  return l;
}

Literal Literal::Negated() const {
  Literal l = *this;
  switch (kind) {
    case LiteralKind::kRelation:
    case LiteralKind::kCondition:
      l.negated = !l.negated;
      break;
    case LiteralKind::kCompare:
      l.compare_equal = !l.compare_equal;
      break;
    case LiteralKind::kFunction:
      break;  // Functions are not negatable; callers must not negate them.
  }
  return l;
}

bool Literal::operator==(const Literal& other) const {
  return kind == other.kind && negated == other.negated &&
         symbol == other.symbol && args == other.args && out == other.out &&
         compare_equal == other.compare_equal;
}

void Literal::CollectVars(std::set<std::string>* out_vars) const {
  for (const Term& t : args) {
    if (!t.is_wildcard()) out_vars->insert(t.name);
  }
  if (kind == LiteralKind::kFunction && !out.is_wildcard()) {
    out_vars->insert(out.name);
  }
}

std::set<std::string> Rule::Vars() const {
  std::set<std::string> vars;
  for (const Term& t : head.args) {
    if (!t.is_wildcard()) vars.insert(t.name);
  }
  for (const Literal& l : body) l.CollectVars(&vars);
  return vars;
}

std::set<std::string> RuleSet::HeadPredicates() const {
  std::set<std::string> out;
  for (const Rule& r : rules) out.insert(r.head.predicate);
  return out;
}

std::set<std::string> RuleSet::BodyPredicates() const {
  std::set<std::string> out;
  for (const Rule& r : rules) {
    for (const Literal& l : r.body) {
      if (l.kind == LiteralKind::kRelation) out.insert(l.symbol);
    }
  }
  return out;
}

std::vector<const Rule*> RuleSet::RulesFor(const std::string& predicate) const {
  std::vector<const Rule*> out;
  for (const Rule& r : rules) {
    if (r.head.predicate == predicate) out.push_back(&r);
  }
  return out;
}

namespace {

Term RenameTerm(const Term& t, const std::string& prefix) {
  if (t.is_wildcard()) return t;
  return Term::Var(prefix + t.name);
}

}  // namespace

Rule RenameVarsApart(const Rule& rule, const std::string& prefix) {
  Rule out = rule;
  for (Term& t : out.head.args) t = RenameTerm(t, prefix);
  for (Literal& l : out.body) {
    for (Term& t : l.args) t = RenameTerm(t, prefix);
    if (l.kind == LiteralKind::kFunction) l.out = RenameTerm(l.out, prefix);
  }
  return out;
}

Literal SubstituteVarInLiteral(const Literal& literal, const std::string& from,
                               const std::string& to) {
  Literal out = literal;
  for (Term& t : out.args) {
    if (t.name == from) t.name = to;
  }
  if (out.kind == LiteralKind::kFunction && out.out.name == from) {
    out.out.name = to;
  }
  return out;
}

Rule SubstituteVar(const Rule& rule, const std::string& from,
                   const std::string& to) {
  Rule out = rule;
  for (Term& t : out.head.args) {
    if (t.name == from) t.name = to;
  }
  for (Literal& l : out.body) {
    l = SubstituteVarInLiteral(l, from, to);
  }
  return out;
}

}  // namespace datalog
}  // namespace inverda
