#include "datalog/evaluator.h"

#include <algorithm>
#include <set>

namespace inverda {
namespace datalog {
namespace {

// Variable bindings: every variable binds to a value vector (width 1 for
// single variables).
using Bindings = std::map<std::string, std::vector<Value>>;

// Splits a keyed row into the per-argument segments of a relation atom:
// segment 0 is the key, segments 1..n follow relation_widths.
std::vector<std::vector<Value>> SegmentRow(int64_t key, const Row& row,
                                           const std::vector<int>& widths) {
  std::vector<std::vector<Value>> segments;
  segments.push_back({Value::Int(key)});
  size_t pos = 0;
  for (int w : widths) {
    std::vector<Value> seg;
    for (int i = 0; i < w && pos < row.size(); ++i) seg.push_back(row[pos++]);
    segments.push_back(std::move(seg));
  }
  return segments;
}

bool SegmentsEqual(const std::vector<Value>& a, const std::vector<Value>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

// Tries to unify the atom's argument terms against the row segments,
// extending `bindings`. Returns false on mismatch.
bool UnifyAtom(const Literal& atom, int64_t key, const Row& row,
               const std::vector<int>& widths, Bindings* bindings) {
  std::vector<std::vector<Value>> segments = SegmentRow(key, row, widths);
  if (segments.size() != atom.args.size()) return false;
  Bindings added;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const Term& term = atom.args[i];
    if (term.is_wildcard()) continue;
    auto bound = bindings->find(term.name);
    if (bound != bindings->end()) {
      if (!SegmentsEqual(bound->second, segments[i])) return false;
      continue;
    }
    auto staged = added.find(term.name);
    if (staged != added.end()) {
      if (!SegmentsEqual(staged->second, segments[i])) return false;
      continue;
    }
    added.emplace(term.name, segments[i]);
  }
  for (auto& [name, value] : added) bindings->emplace(name, std::move(value));
  return true;
}

// Resolves the relation for a symbol: derived first, then base.
const Table* LookupRelation(
    const std::string& symbol, const EvalInput& input,
    const std::map<std::string, Table>& derived) {
  auto it = derived.find(symbol);
  if (it != derived.end()) return &it->second;
  auto jt = input.relations.find(symbol);
  if (jt != input.relations.end()) return jt->second;
  return nullptr;
}

const std::vector<int>* LookupWidths(const std::string& symbol,
                                     const EvalInput& input) {
  auto it = input.relation_widths.find(symbol);
  if (it == input.relation_widths.end()) return nullptr;
  return &it->second;
}

class RuleEvaluator {
 public:
  RuleEvaluator(const EvalInput& input,
                const std::map<std::string, Table>& derived,
                std::map<std::string, Table>* out)
      : input_(input), derived_(derived), out_(out) {}

  Status EvaluateRule(const Rule& rule) {
    // Partition the body: positive relation atoms drive the search; the
    // rest are checked/computed once their variables are bound.
    std::vector<const Literal*> positives, others;
    for (const Literal& l : rule.body) {
      if (l.kind == LiteralKind::kRelation && !l.negated) {
        positives.push_back(&l);
      } else {
        others.push_back(&l);
      }
    }
    Bindings bindings;
    return Search(rule, positives, others, 0, &bindings);
  }

 private:
  Status Search(const Rule& rule, const std::vector<const Literal*>& positives,
                const std::vector<const Literal*>& others, size_t depth,
                Bindings* bindings) {
    if (depth == positives.size()) {
      return FinishRule(rule, others, *bindings);
    }
    const Literal& atom = *positives[depth];
    const Table* table = LookupRelation(atom.symbol, input_, derived_);
    const std::vector<int>* widths = LookupWidths(atom.symbol, input_);
    if (table == nullptr || widths == nullptr) {
      return Status::NotFound("relation " + atom.symbol + " unbound");
    }
    Status status = Status::OK();
    table->Scan([&](int64_t key, const Row& row) {
      if (!status.ok()) return;
      Bindings extended = *bindings;
      if (!UnifyAtom(atom, key, row, *widths, &extended)) return;
      status = Search(rule, positives, others, depth + 1, &extended);
    });
    return status;
  }

  Result<std::vector<Value>> ResolveTerm(const Term& term,
                                         const Bindings& bindings) {
    if (term.is_wildcard()) {
      return Status::InvalidArgument("wildcard in a computed position");
    }
    auto it = bindings.find(term.name);
    if (it == bindings.end()) {
      return Status::InvalidArgument("unbound variable " + term.name);
    }
    return it->second;
  }

  Status FinishRule(const Rule& rule, std::vector<const Literal*> pending,
                    Bindings bindings) {
    // Repeatedly evaluate whatever literal has its inputs bound; function
    // literals may bind their output variable.
    bool progress = true;
    while (!pending.empty() && progress) {
      progress = false;
      for (auto it = pending.begin(); it != pending.end();) {
        INVERDA_ASSIGN_OR_RETURN(int verdict, TryLiteral(**it, &bindings));
        if (verdict == 0) {
          ++it;  // not yet evaluable
          continue;
        }
        if (verdict < 0) return Status::OK();  // literal failed: no tuple
        it = pending.erase(it);
        progress = true;
      }
    }
    if (!pending.empty()) {
      return Status::InvalidArgument("rule not evaluable: unbound literals");
    }
    // Emit the head tuple.
    if (rule.head.args.empty()) {
      return Status::InvalidArgument("head without key argument");
    }
    INVERDA_ASSIGN_OR_RETURN(std::vector<Value> key_seg,
                             ResolveTerm(rule.head.args[0], bindings));
    if (key_seg.size() != 1 || !key_seg[0].is_int()) {
      return Status::InvalidArgument("head key is not a single integer");
    }
    Row payload;
    for (size_t i = 1; i < rule.head.args.size(); ++i) {
      INVERDA_ASSIGN_OR_RETURN(std::vector<Value> seg,
                               ResolveTerm(rule.head.args[i], bindings));
      payload.insert(payload.end(), seg.begin(), seg.end());
    }
    Table& result = out_->at(rule.head.predicate);
    if (const Row* existing = result.Find(key_seg[0].AsInt())) {
      if (!RowsEqual(*existing, payload)) {
        return Status::Internal(
            "conflicting derivations for key " +
            std::to_string(key_seg[0].AsInt()) + " of " +
            rule.head.predicate);
      }
      return Status::OK();
    }
    return result.Insert(key_seg[0].AsInt(), std::move(payload));
  }

  // Returns 1 when the literal succeeded, -1 when it failed (rule yields
  // no tuple for these bindings), 0 when inputs are still unbound.
  Result<int> TryLiteral(const Literal& literal, Bindings* bindings) {
    switch (literal.kind) {
      case LiteralKind::kRelation: {
        // Negative literal: every non-wildcard argument must be bound.
        for (const Term& t : literal.args) {
          if (!t.is_wildcard() && !bindings->count(t.name)) return 0;
        }
        const Table* table = LookupRelation(literal.symbol, input_, derived_);
        const std::vector<int>* widths = LookupWidths(literal.symbol, input_);
        if (table == nullptr || widths == nullptr) {
          return Status::NotFound("relation " + literal.symbol + " unbound");
        }
        bool exists = false;
        table->Scan([&](int64_t key, const Row& row) {
          if (exists) return;
          Bindings probe = *bindings;
          if (UnifyAtom(literal, key, row, *widths, &probe)) exists = true;
        });
        return exists ? -1 : 1;  // negated: match means failure
      }
      case LiteralKind::kCondition: {
        const Term& arg0 = literal.args[0];
        std::vector<Value> values;
        for (const Term& t : literal.args) {
          if (t.is_wildcard() || !bindings->count(t.name)) return 0;
          const std::vector<Value>& seg = bindings->at(t.name);
          values.insert(values.end(), seg.begin(), seg.end());
        }
        (void)arg0;
        auto it = input_.conditions.find(literal.symbol);
        if (it == input_.conditions.end()) {
          return Status::NotFound("condition " + literal.symbol + " unbound");
        }
        INVERDA_ASSIGN_OR_RETURN(bool match,
                                 it->second.expr->EvalBool(it->second.schema,
                                                           values));
        return (match != literal.negated) ? 1 : -1;
      }
      case LiteralKind::kFunction: {
        std::vector<Value> args;
        for (const Term& t : literal.args) {
          if (t.is_wildcard() || !bindings->count(t.name)) return 0;
          const std::vector<Value>& seg = bindings->at(t.name);
          args.insert(args.end(), seg.begin(), seg.end());
        }
        auto it = input_.functions.find(literal.symbol);
        if (it == input_.functions.end()) {
          return Status::NotFound("function " + literal.symbol + " unbound");
        }
        INVERDA_ASSIGN_OR_RETURN(Value value, it->second(args));
        auto bound = bindings->find(literal.out.name);
        if (bound != bindings->end()) {
          return SegmentsEqual(bound->second, {value}) ? 1 : -1;
        }
        bindings->emplace(literal.out.name, std::vector<Value>{value});
        return 1;
      }
      case LiteralKind::kCompare: {
        const Term& a = literal.args[0];
        const Term& b = literal.args[1];
        if (!bindings->count(a.name) || !bindings->count(b.name)) return 0;
        bool equal = SegmentsEqual(bindings->at(a.name), bindings->at(b.name));
        return (equal == literal.compare_equal) ? 1 : -1;
      }
    }
    return Status::Internal("unknown literal kind");
  }

  const EvalInput& input_;
  const std::map<std::string, Table>& derived_;
  std::map<std::string, Table>* out_;
};

}  // namespace

Result<std::map<std::string, Table>> Evaluate(const RuleSet& rules,
                                              const EvalInput& input) {
  // Order head predicates so each is fully evaluated before rules that
  // reference it (non-recursive stratification).
  std::set<std::string> heads = rules.HeadPredicates();
  std::map<std::string, std::set<std::string>> deps;
  for (const Rule& r : rules.rules) {
    for (const Literal& l : r.body) {
      if (l.kind == LiteralKind::kRelation && heads.count(l.symbol) &&
          l.symbol != r.head.predicate) {
        deps[r.head.predicate].insert(l.symbol);
      }
    }
  }
  std::vector<std::string> order;
  std::set<std::string> done;
  while (order.size() < heads.size()) {
    bool progress = false;
    for (const std::string& h : heads) {
      if (done.count(h)) continue;
      bool ready = true;
      for (const std::string& d : deps[h]) {
        if (!done.count(d)) ready = false;
      }
      if (!ready) continue;
      order.push_back(h);
      done.insert(h);
      progress = true;
    }
    if (!progress) {
      return Status::InvalidArgument("rule set is recursive");
    }
  }

  std::map<std::string, Table> derived;
  std::map<std::string, Table> current;
  for (const std::string& h : order) {
    // Result schema: synthesized from the declared widths (types are
    // advisory in this engine).
    auto widths = input.relation_widths.find(h);
    if (widths == input.relation_widths.end()) {
      return Status::NotFound("relation widths for " + h + " unbound");
    }
    int total = 0;
    for (int w : widths->second) total += w;
    std::vector<Column> columns;
    for (int i = 0; i < total; ++i) {
      columns.push_back({"c" + std::to_string(i), DataType::kString});
    }
    current.clear();
    current.emplace(h, Table(TableSchema(h, std::move(columns))));
    RuleEvaluator evaluator(input, derived, &current);
    for (const Rule& r : rules.rules) {
      if (r.head.predicate != h) continue;
      INVERDA_RETURN_IF_ERROR(evaluator.EvaluateRule(r));
    }
    derived.emplace(h, std::move(current.at(h)));
  }
  return derived;
}

}  // namespace datalog
}  // namespace inverda
