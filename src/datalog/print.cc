#include "datalog/print.h"

#include "util/strings.h"

namespace inverda {
namespace datalog {

std::string ToString(const Term& term) { return term.name; }

namespace {

std::string ArgsToString(const std::vector<Term>& args) {
  std::vector<std::string> parts;
  parts.reserve(args.size());
  for (const Term& t : args) parts.push_back(ToString(t));
  return Join(parts, ", ");
}

}  // namespace

std::string ToString(const Literal& literal) {
  switch (literal.kind) {
    case LiteralKind::kRelation:
    case LiteralKind::kCondition: {
      std::string out = literal.negated ? "not " : "";
      out += literal.symbol + "(" + ArgsToString(literal.args) + ")";
      return out;
    }
    case LiteralKind::kFunction:
      return ToString(literal.out) + " = " + literal.symbol + "(" +
             ArgsToString(literal.args) + ")";
    case LiteralKind::kCompare:
      return ToString(literal.args[0]) +
             (literal.compare_equal ? " = " : " != ") +
             ToString(literal.args[1]);
  }
  return "?";
}

std::string ToString(const Rule& rule) {
  std::vector<std::string> parts;
  parts.reserve(rule.body.size());
  for (const Literal& l : rule.body) parts.push_back(ToString(l));
  return rule.head.predicate + "(" + ArgsToString(rule.head.args) + ") <- " +
         Join(parts, ", ");
}

std::string ToString(const RuleSet& rules) {
  std::string out;
  for (const Rule& r : rules.rules) {
    out += ToString(r);
    out += "\n";
  }
  return out;
}

}  // namespace datalog
}  // namespace inverda
