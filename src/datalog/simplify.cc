#include "datalog/simplify.h"

#include <algorithm>
#include <map>

#include "datalog/print.h"

namespace inverda {
namespace datalog {
namespace {

bool IsRelation(const Literal& l) { return l.kind == LiteralKind::kRelation; }

// Renames every variable of `rule` apart with a numbered prefix.
Rule FreshRename(const Rule& rule, int* counter) {
  return RenameVarsApart(rule, "u" + std::to_string((*counter)++) + "_");
}

// Unifies the head of a (freshly renamed) defining rule with the argument
// terms of a body literal: head variables at non-wildcard positions are
// substituted by the literal's terms; wildcard positions leave the defining
// rule's variable free (existential). Returns the substituted body.
Result<std::vector<Literal>> UnifyHead(const Rule& defining,
                                       const Literal& literal) {
  if (defining.head.args.size() != literal.args.size()) {
    return Status::InvalidArgument(
        "arity mismatch unfolding " + literal.symbol + ": " +
        ToString(defining) + " vs " + ToString(literal));
  }
  std::vector<Literal> body = defining.body;
  for (size_t i = 0; i < literal.args.size(); ++i) {
    const Term& call = literal.args[i];
    const Term& formal = defining.head.args[i];
    if (call.is_wildcard()) continue;
    if (formal.is_wildcard()) {
      // The defining rule ignores this position; the caller's term is
      // unconstrained by the body.
      continue;
    }
    for (Literal& l : body) {
      l = SubstituteVarInLiteral(l, formal.name, call.name);
    }
  }
  return body;
}

// Variables of a literal that do not occur in `bound`.
std::set<std::string> PrivateVars(const Literal& literal,
                                  const std::set<std::string>& bound) {
  std::set<std::string> vars;
  literal.CollectVars(&vars);
  std::set<std::string> out;
  for (const std::string& v : vars) {
    if (!bound.count(v)) out.insert(v);
  }
  return out;
}

// Replaces occurrences of `vars` in the literal with wildcards.
Literal WildcardVars(const Literal& literal, const std::set<std::string>& vars) {
  Literal out = literal;
  for (Term& t : out.args) {
    if (vars.count(t.name)) t = Term::Wildcard();
  }
  return out;
}

// One negation choice: the literals standing for the failure of one body
// literal of a defining rule (Lemma 1, case 2).
Result<std::vector<std::vector<Literal>>> NegationChoices(
    const std::vector<Literal>& defining_body,
    const std::set<std::string>& head_vars) {
  std::vector<std::vector<Literal>> choices;
  for (const Literal& k : defining_body) {
    std::set<std::string> private_vars = PrivateVars(k, head_vars);
    if (k.kind == LiteralKind::kRelation) {
      // Failure of q(...) is ¬q(... with private vars wildcarded); failure
      // of ¬q(...) is q(...).
      choices.push_back({WildcardVars(k.Negated(), private_vars)});
      continue;
    }
    if (k.kind == LiteralKind::kFunction) {
      return Status::InvalidArgument(
          "cannot negate a rule with function literals");
    }
    // Condition / comparison: include the positive relation literals of the
    // defining body that bind the private variables, plus the negated
    // condition.
    std::vector<Literal> choice;
    for (const Literal& binder : defining_body) {
      if (!IsRelation(binder) || binder.negated) continue;
      std::set<std::string> binder_vars;
      binder.CollectVars(&binder_vars);
      bool binds = false;
      for (const std::string& v : private_vars) {
        if (binder_vars.count(v)) binds = true;
      }
      if (binds) choice.push_back(binder);
    }
    choice.push_back(k.Negated());
    choices.push_back(std::move(choice));
  }
  return choices;
}

}  // namespace

RuleSet RenameBodyRelations(const RuleSet& rules,
                            const std::set<std::string>& from,
                            const std::string& suffix) {
  RuleSet out = rules;
  for (Rule& r : out.rules) {
    for (Literal& l : r.body) {
      if (IsRelation(l) && from.count(l.symbol)) l.symbol += suffix;
    }
  }
  return out;
}

RuleSet ApplyEmptyRelations(const RuleSet& rules,
                            const std::set<std::string>& empty) {
  RuleSet out;
  for (const Rule& r : rules.rules) {
    bool dropped = false;
    Rule kept;
    kept.head = r.head;
    for (const Literal& l : r.body) {
      if (IsRelation(l) && empty.count(l.symbol)) {
        if (!l.negated) {
          dropped = true;  // positive literal on an empty relation
          break;
        }
        continue;  // negative literal on an empty relation: trivially true
      }
      kept.body.push_back(l);
    }
    if (!dropped) out.rules.push_back(std::move(kept));
  }
  return out;
}

Result<RuleSet> Unfold(const RuleSet& outer, const RuleSet& inner,
                       const std::set<std::string>& base) {
  std::set<std::string> defined = inner.HeadPredicates();
  // Work list: rules that may still contain unfoldable literals.
  std::vector<Rule> pending = outer.rules;
  RuleSet done;
  int counter = 0;
  int guard = 0;
  while (!pending.empty()) {
    if (++guard > 100000) {
      return Status::Internal("unfolding diverged");
    }
    Rule rule = std::move(pending.back());
    pending.pop_back();

    // Find the first unfoldable literal.
    int target = -1;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      const Literal& l = rule.body[i];
      if (IsRelation(l) && !base.count(l.symbol) && defined.count(l.symbol)) {
        target = static_cast<int>(i);
        break;
      }
    }
    if (target < 0) {
      done.rules.push_back(std::move(rule));
      continue;
    }
    Literal literal = rule.body[static_cast<size_t>(target)];
    std::vector<Literal> rest(rule.body.begin(),
                              rule.body.begin() + target);
    rest.insert(rest.end(), rule.body.begin() + target + 1, rule.body.end());

    std::vector<const Rule*> defs = inner.RulesFor(literal.symbol);
    if (!literal.negated) {
      // Lemma 1, case 1: one new rule per defining rule.
      for (const Rule* def : defs) {
        Rule fresh = FreshRename(*def, &counter);
        INVERDA_ASSIGN_OR_RETURN(std::vector<Literal> body,
                                 UnifyHead(fresh, literal));
        Rule composed;
        composed.head = rule.head;
        composed.body = rest;
        composed.body.insert(composed.body.end(), body.begin(), body.end());
        pending.push_back(std::move(composed));
      }
      continue;
    }
    // Lemma 1, case 2: every defining rule must fail; one new rule per
    // combination of per-rule failure choices.
    std::vector<std::vector<std::vector<Literal>>> per_rule_choices;
    for (const Rule* def : defs) {
      Rule fresh = FreshRename(*def, &counter);
      Literal positive = literal;
      positive.negated = false;
      INVERDA_ASSIGN_OR_RETURN(std::vector<Literal> body,
                               UnifyHead(fresh, positive));
      // The head-bound variables are the caller's terms.
      std::set<std::string> bound;
      for (const Term& t : literal.args) {
        if (!t.is_wildcard()) bound.insert(t.name);
      }
      INVERDA_ASSIGN_OR_RETURN(std::vector<std::vector<Literal>> choices,
                               NegationChoices(body, bound));
      per_rule_choices.push_back(std::move(choices));
    }
    // Cross product across defining rules.
    std::vector<std::vector<Literal>> combos = {{}};
    for (const auto& choices : per_rule_choices) {
      std::vector<std::vector<Literal>> next;
      for (const auto& combo : combos) {
        for (const auto& choice : choices) {
          std::vector<Literal> merged = combo;
          merged.insert(merged.end(), choice.begin(), choice.end());
          next.push_back(std::move(merged));
        }
      }
      combos = std::move(next);
    }
    for (const auto& combo : combos) {
      Rule composed;
      composed.head = rule.head;
      composed.body = rest;
      composed.body.insert(composed.body.end(), combo.begin(), combo.end());
      pending.push_back(std::move(composed));
    }
  }
  return done;
}

namespace {

// Returns true when the negative literal `neg` directly contradicts the
// positive literal `pos`: same symbol, and every non-wildcard argument of
// `neg` is syntactically equal to the corresponding argument of `pos`.
bool Contradicts(const Literal& pos, const Literal& neg) {
  if (pos.kind != neg.kind || pos.symbol != neg.symbol) return false;
  if (pos.args.size() != neg.args.size()) return false;
  for (size_t i = 0; i < pos.args.size(); ++i) {
    if (neg.args[i].is_wildcard()) continue;
    if (pos.args[i].is_wildcard()) return false;
    if (!(pos.args[i] == neg.args[i])) return false;
  }
  return true;
}

// Lemma 5 within one rule: merges positive relation literals sharing symbol
// and key term; var-var mismatches become substitutions, wildcards adopt
// the partner's term. Returns true if anything changed.
bool ApplyUniqueKey(Rule* rule) {
  for (size_t i = 0; i < rule->body.size(); ++i) {
    Literal& a = rule->body[i];
    if (!IsRelation(a) || a.negated || a.args.empty() ||
        a.args[0].is_wildcard()) {
      continue;
    }
    for (size_t j = i + 1; j < rule->body.size(); ++j) {
      Literal& b = rule->body[j];
      if (!IsRelation(b) || b.negated || b.symbol != a.symbol) continue;
      if (b.args.empty() || !(b.args[0] == a.args[0])) continue;
      if (a.args.size() != b.args.size()) continue;
      // Merge b into a.
      std::vector<std::pair<std::string, std::string>> substitutions;
      Literal merged = a;
      bool ok = true;
      for (size_t k = 1; k < a.args.size(); ++k) {
        const Term& ta = a.args[k];
        const Term& tb = b.args[k];
        if (ta == tb) continue;
        if (ta.is_wildcard()) {
          merged.args[k] = tb;
        } else if (tb.is_wildcard()) {
          // keep ta
        } else {
          substitutions.emplace_back(tb.name, ta.name);
        }
      }
      if (!ok) continue;
      rule->body[i] = merged;
      rule->body.erase(rule->body.begin() + static_cast<long>(j));
      for (const auto& [from, to] : substitutions) {
        *rule = SubstituteVar(*rule, from, to);
      }
      return true;
    }
  }
  return false;
}

// Removes duplicate literals and trivially-true comparisons; applies
// equality substitutions (A = B -> B := A). Returns true on change;
// sets *contradiction when the rule can never fire.
bool NormalizeRule(Rule* rule, bool* contradiction) {
  *contradiction = false;
  bool changed = false;
  // Equality substitution.
  for (size_t i = 0; i < rule->body.size(); ++i) {
    const Literal& l = rule->body[i];
    if (l.kind != LiteralKind::kCompare) continue;
    const Term& a = l.args[0];
    const Term& b = l.args[1];
    if (l.compare_equal) {
      if (a == b) {  // trivially true
        rule->body.erase(rule->body.begin() + static_cast<long>(i));
        return true;
      }
      if (!a.is_wildcard() && !b.is_wildcard()) {
        std::string from = b.name, to = a.name;
        rule->body.erase(rule->body.begin() + static_cast<long>(i));
        *rule = SubstituteVar(*rule, from, to);
        return true;
      }
    } else if (a == b && !a.is_wildcard()) {
      *contradiction = true;  // A != A
      return true;
    }
  }
  // Duplicate literals.
  for (size_t i = 0; i < rule->body.size(); ++i) {
    for (size_t j = i + 1; j < rule->body.size(); ++j) {
      if (rule->body[i] == rule->body[j]) {
        rule->body.erase(rule->body.begin() + static_cast<long>(j));
        return true;
      }
    }
  }
  // Contradictions (Lemma 4).
  for (const Literal& pos : rule->body) {
    if (pos.negated) continue;
    if (pos.kind != LiteralKind::kRelation &&
        pos.kind != LiteralKind::kCondition) {
      continue;
    }
    for (const Literal& neg : rule->body) {
      if (!neg.negated) continue;
      if (Contradicts(pos, neg)) {
        *contradiction = true;
        return true;
      }
    }
  }
  // Variables occurring exactly once in the whole rule (and not in the
  // head) are existential: replace them with wildcards so the structural
  // lemmas can match rules that differ only in such names.
  {
    std::map<std::string, int> counts;
    auto count_term = [&counts](const Term& t) {
      if (!t.is_wildcard()) ++counts[t.name];
    };
    for (const Term& t : rule->head.args) count_term(t);
    for (const Literal& l : rule->body) {
      for (const Term& t : l.args) count_term(t);
      if (l.kind == LiteralKind::kFunction) count_term(l.out);
    }
    std::set<std::string> head_vars;
    for (const Term& t : rule->head.args) {
      if (!t.is_wildcard()) head_vars.insert(t.name);
    }
    for (Literal& l : rule->body) {
      if (l.kind == LiteralKind::kFunction || l.kind == LiteralKind::kCompare) {
        continue;  // handled by their own rules
      }
      for (Term& t : l.args) {
        if (!t.is_wildcard() && counts[t.name] == 1 &&
            !head_vars.count(t.name)) {
          t = Term::Wildcard();
          return true;
        }
      }
    }
  }
  // Unused function outputs: functions are total, so a function literal
  // whose output variable appears nowhere else can be dropped.
  for (size_t i = 0; i < rule->body.size(); ++i) {
    const Literal& l = rule->body[i];
    if (l.kind != LiteralKind::kFunction || l.out.is_wildcard()) continue;
    int uses = 0;
    for (const Term& t : rule->head.args) {
      if (t == l.out) ++uses;
    }
    for (size_t j = 0; j < rule->body.size(); ++j) {
      if (j == i) continue;
      std::set<std::string> vars;
      rule->body[j].CollectVars(&vars);
      if (vars.count(l.out.name)) ++uses;
    }
    if (uses == 0) {
      rule->body.erase(rule->body.begin() + static_cast<long>(i));
      return true;
    }
  }
  (void)changed;
  return false;
}

// Attempts to find a variable bijection (fixing `fixed` variables) mapping
// the literals of `a` one-to-one onto the literals of `b`.
bool MatchLiteral(const Literal& a, const Literal& b,
                  std::map<std::string, std::string>* mapping) {
  if (a.kind != b.kind || a.negated != b.negated || a.symbol != b.symbol ||
      a.compare_equal != b.compare_equal ||
      a.args.size() != b.args.size()) {
    return false;
  }
  std::map<std::string, std::string> attempt = *mapping;
  auto match_term = [&attempt](const Term& x, const Term& y) {
    if (x.is_wildcard() || y.is_wildcard()) return x.is_wildcard() == y.is_wildcard();
    auto it = attempt.find(x.name);
    if (it != attempt.end()) return it->second == y.name;
    for (const auto& [from, to] : attempt) {
      (void)from;
      if (to == y.name) return false;  // injective
    }
    attempt.emplace(x.name, y.name);
    return true;
  };
  for (size_t i = 0; i < a.args.size(); ++i) {
    if (!match_term(a.args[i], b.args[i])) return false;
  }
  if (a.kind == LiteralKind::kFunction && !match_term(a.out, b.out)) {
    return false;
  }
  *mapping = std::move(attempt);
  return true;
}

bool MatchBodies(const std::vector<Literal>& a, const std::vector<Literal>& b,
                 std::map<std::string, std::string> mapping,
                 std::vector<bool> used, size_t index, bool subset_only) {
  if (index == a.size()) return true;
  for (size_t j = 0; j < b.size(); ++j) {
    if (used[j]) continue;
    std::map<std::string, std::string> next = mapping;
    if (!MatchLiteral(a[index], b[j], &next)) continue;
    used[j] = true;
    if (MatchBodies(a, b, std::move(next), used, index + 1, subset_only)) {
      return true;
    }
    used[j] = false;
  }
  return false;
}

// True if rule `a`'s body maps onto (a subset of) rule `b`'s body under a
// variable bijection that identifies the head arguments.
bool RuleCovers(const Rule& a, const Rule& b, bool subset_only) {
  if (a.head.predicate != b.head.predicate ||
      a.head.args.size() != b.head.args.size()) {
    return false;
  }
  if (!subset_only && a.body.size() != b.body.size()) return false;
  if (subset_only && a.body.size() > b.body.size()) return false;
  std::map<std::string, std::string> mapping;
  for (size_t i = 0; i < a.head.args.size(); ++i) {
    const Term& x = a.head.args[i];
    const Term& y = b.head.args[i];
    if (x.is_wildcard() != y.is_wildcard()) return false;
    if (!x.is_wildcard()) mapping[x.name] = y.name;
  }
  return MatchBodies(a.body, b.body, std::move(mapping),
                     std::vector<bool>(b.body.size(), false), 0, subset_only);
}

// Lemma 3: if two rules are identical except one literal L vs ¬L, merge
// them into one rule without that literal. Returns true on change.
bool ApplyTautology(RuleSet* rules) {
  for (size_t i = 0; i < rules->rules.size(); ++i) {
    for (size_t j = 0; j < rules->rules.size(); ++j) {
      if (i == j) continue;
      const Rule& r = rules->rules[i];
      const Rule& s = rules->rules[j];
      if (r.head.predicate != s.head.predicate ||
          r.body.size() != s.body.size()) {
        continue;
      }
      // Try removing each literal of r and its negation in s.
      for (size_t li = 0; li < r.body.size(); ++li) {
        Rule r_less = r;
        Literal removed = r.body[li];
        r_less.body.erase(r_less.body.begin() + static_cast<long>(li));
        Rule s_expected = r_less;
        s_expected.body.push_back(removed.Negated());
        if (RuleCovers(s_expected, s, /*subset_only=*/false)) {
          rules->rules[i] = r_less;
          rules->rules.erase(rules->rules.begin() + static_cast<long>(j));
          return true;
        }
      }
    }
  }
  return false;
}

// Equality splitting (the rules 118-123 step of the paper's appendix): a
// pair of rules
//     r: H <- B, q(..., u, ...)
//     s: H <- B, q(..., w, ...), u != w     (w occurring nowhere else)
// jointly covers every value of the q position, so the pair merges into
//     H <- B, q(..., w, ...)                (w free).
// Returns true on change.
bool ApplyEqualitySplit(RuleSet* rules) {
  for (size_t si = 0; si < rules->rules.size(); ++si) {
    const Rule& s = rules->rules[si];
    for (size_t ne_i = 0; ne_i < s.body.size(); ++ne_i) {
      const Literal& ne = s.body[ne_i];
      if (ne.kind != LiteralKind::kCompare || ne.compare_equal) continue;
      for (int orientation = 0; orientation < 2; ++orientation) {
        const Term& u = ne.args[orientation];
        const Term& w = ne.args[1 - orientation];
        if (u.is_wildcard() || w.is_wildcard()) continue;
        // w must occur in exactly one body literal besides the comparison
        // and not in the head.
        bool in_head = false;
        for (const Term& t : s.head.args) {
          if (t == w) in_head = true;
        }
        if (in_head) continue;
        int occurrences = 0;
        for (size_t li = 0; li < s.body.size(); ++li) {
          if (li == ne_i) continue;
          std::set<std::string> vars;
          s.body[li].CollectVars(&vars);
          if (vars.count(w.name)) ++occurrences;
        }
        if (occurrences != 1) continue;
        // Substitute w := u and drop the comparison.
        Rule substituted = s;
        substituted.body.erase(substituted.body.begin() +
                               static_cast<long>(ne_i));
        substituted = SubstituteVar(substituted, w.name, u.name);
        for (size_t ri = 0; ri < rules->rules.size(); ++ri) {
          if (ri == si) continue;
          const Rule& r = rules->rules[ri];
          if (r.body.size() != substituted.body.size()) continue;
          if (!RuleCovers(substituted, r, /*subset_only=*/false)) continue;
          // Merge: s without the comparison, w left free.
          Rule merged = s;
          merged.body.erase(merged.body.begin() + static_cast<long>(ne_i));
          rules->rules[ri] = std::move(merged);
          rules->rules.erase(rules->rules.begin() + static_cast<long>(si));
          return true;
        }
      }
    }
  }
  return false;
}

// Subsumption + duplicate removal: drop rule j when some rule i's body is a
// subset of j's (same head). Returns true on change.
bool ApplySubsumption(RuleSet* rules) {
  for (size_t i = 0; i < rules->rules.size(); ++i) {
    for (size_t j = 0; j < rules->rules.size(); ++j) {
      if (i == j) continue;
      if (RuleCovers(rules->rules[i], rules->rules[j], /*subset_only=*/true)) {
        rules->rules.erase(rules->rules.begin() + static_cast<long>(j));
        return true;
      }
    }
  }
  return false;
}

}  // namespace

RuleSet Simplify(RuleSet rules) {
  bool changed = true;
  int guard = 0;
  while (changed && ++guard < 10000) {
    changed = false;
    // Per-rule normalization + Lemma 5 + Lemma 4.
    for (size_t i = 0; i < rules.rules.size();) {
      bool contradiction = false;
      if (NormalizeRule(&rules.rules[i], &contradiction)) {
        changed = true;
        if (contradiction) {
          rules.rules.erase(rules.rules.begin() + static_cast<long>(i));
        }
        continue;  // revisit the same index
      }
      if (ApplyUniqueKey(&rules.rules[i])) {
        changed = true;
        continue;
      }
      ++i;
    }
    if (ApplyTautology(&rules)) changed = true;
    if (ApplyEqualitySplit(&rules)) changed = true;
    if (ApplySubsumption(&rules)) changed = true;
  }
  return rules;
}

bool IsIdentityMapping(const RuleSet& rules, const std::string& head,
                       const std::string& base) {
  std::vector<const Rule*> defs = rules.RulesFor(head);
  if (defs.size() != 1) return false;
  const Rule& r = *defs[0];
  if (r.body.size() != 1) return false;
  const Literal& l = r.body[0];
  if (l.kind != LiteralKind::kRelation || l.negated || l.symbol != base) {
    return false;
  }
  // Every head argument must appear at the same relative position of the
  // body literal (the body may carry extra projected-away positions only
  // as wildcards).
  if (l.args.size() < r.head.args.size()) return false;
  size_t li = 0;
  for (const Term& h : r.head.args) {
    // Find h in the remaining body args.
    bool found = false;
    while (li < l.args.size()) {
      const Term& b = l.args[li++];
      if (b == h) {
        found = true;
        break;
      }
      if (!b.is_wildcard()) return false;  // non-projected mismatch
    }
    if (!found) return false;
  }
  for (; li < l.args.size(); ++li) {
    if (!l.args[li].is_wildcard()) return false;
  }
  return true;
}

Result<RoundTripReport> CheckRoundTrip(
    const RuleSet& write, const RuleSet& read,
    const std::vector<std::string>& data_relations,
    const std::vector<std::string>& start_aux,
    const std::vector<std::string>& result_aux) {
  RoundTripReport report;

  // Label the original data relations.
  std::set<std::string> data(data_relations.begin(), data_relations.end());
  RuleSet write_on_base = RenameBodyRelations(write, data, "_D");
  std::set<std::string> empty(start_aux.begin(), start_aux.end());
  write_on_base = ApplyEmptyRelations(write_on_base, empty);

  std::set<std::string> base;
  for (const std::string& d : data_relations) base.insert(d + "_D");

  INVERDA_ASSIGN_OR_RETURN(RuleSet composed,
                           Unfold(read, write_on_base, base));
  report.residual = Simplify(std::move(composed));

  std::set<std::string> aux_ok(result_aux.begin(), result_aux.end());
  for (const std::string& d : data_relations) {
    if (!IsIdentityMapping(report.residual, d, d + "_D")) {
      report.holds = false;
      report.detail = "relation " + d +
                      " does not reduce to the identity; residual rules:\n" +
                      ToString(report.residual);
      return report;
    }
  }
  // No residual rule may derive anything but the data identities and the
  // tolerated aux relations.
  for (const Rule& r : report.residual.rules) {
    if (data.count(r.head.predicate)) continue;
    if (aux_ok.count(r.head.predicate)) continue;
    report.holds = false;
    report.detail = "unexpected residual derivation: " + ToString(r);
    return report;
  }
  report.holds = true;
  report.detail = "identity";
  return report;
}

}  // namespace datalog
}  // namespace inverda
