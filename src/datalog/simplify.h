#ifndef INVERDA_DATALOG_SIMPLIFY_H_
#define INVERDA_DATALOG_SIMPLIFY_H_

#include <set>
#include <string>
#include <vector>

#include "datalog/rule.h"
#include "util/status.h"

namespace inverda {
namespace datalog {

/// Symbolic composition and simplification of gamma rule sets, mechanizing
/// the formal bidirectionality evaluation of Section 5 of the paper
/// (Lemmas 1-5: deduction, empty predicate, tautology, contradiction,
/// unique key).

/// Replaces every body literal referencing `from` with the same literal on
/// `to` (used to label the original relations, e.g. T -> T_D).
RuleSet RenameBodyRelations(const RuleSet& rules,
                            const std::set<std::string>& from,
                            const std::string& suffix);

/// Lemma 2: drops rules with a positive literal on an empty relation and
/// removes negative literals on empty relations.
RuleSet ApplyEmptyRelations(const RuleSet& rules,
                            const std::set<std::string>& empty);

/// Lemma 1 (deduction): unfolds every body literal of `outer` whose
/// predicate is defined by `inner`, both positively (rule composition) and
/// negatively (negation pushed through the defining rules, producing one
/// rule per choice combination). Predicates in `base` are never unfolded.
Result<RuleSet> Unfold(const RuleSet& outer, const RuleSet& inner,
                       const std::set<std::string>& base);

/// Lemmas 3-5 plus cleanups, iterated to a fixpoint: duplicate-literal
/// removal, unique-key merging (Lemma 5), contradiction removal (Lemma 4),
/// equality substitution, unused-function removal, tautology merging
/// (Lemma 3), subsumption, and duplicate-rule removal.
RuleSet Simplify(RuleSet rules);

/// True if `rules` derives `head` exactly as the identity of `base`:
/// a single rule head(p, X...) <- base(p, X...) with matching argument
/// lists (wildcards in projected positions allowed).
bool IsIdentityMapping(const RuleSet& rules, const std::string& head,
                       const std::string& base);

/// Result of mechanically checking one bidirectionality condition
/// (Equation 26 or 27 of the paper) for one SMO.
struct RoundTripReport {
  bool holds = false;
  bool skipped = false;       ///< id-generating / ω-based rules: not checked
  std::string detail;         ///< human-readable explanation
  RuleSet residual;           ///< the simplified composed rule set
};

/// Checks D = gamma_read^data(gamma_write(D)): renames the starting side's
/// data relations to their _D labels, empties the starting side's aux
/// relations, unfolds `read` over `write`, simplifies, and verifies that
/// every data relation maps to the identity. `result_aux` relations may
/// retain residual derivations (the data projection ignores them).
Result<RoundTripReport> CheckRoundTrip(
    const RuleSet& write, const RuleSet& read,
    const std::vector<std::string>& data_relations,
    const std::vector<std::string>& start_aux,
    const std::vector<std::string>& result_aux);

}  // namespace datalog
}  // namespace inverda

#endif  // INVERDA_DATALOG_SIMPLIFY_H_
