#ifndef INVERDA_DATALOG_EVALUATOR_H_
#define INVERDA_DATALOG_EVALUATOR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "datalog/rule.h"
#include "expr/expression.h"
#include "storage/table.h"
#include "util/status.h"

namespace inverda {
namespace datalog {

/// Grounding and input data for evaluating a (non-recursive) rule set.
///
/// Relations are keyed Tables: the first argument of every atom binds the
/// key, the remaining arguments bind consecutive payload segments whose
/// widths are given by `relation_widths`. Attribute-list variables bind to
/// value vectors, single variables to single values.
struct EvalInput {
  /// Base relation contents by symbol.
  std::map<std::string, const Table*> relations;

  /// Payload segment widths per relation symbol (excluding the key).
  std::map<std::string, std::vector<int>> relation_widths;

  /// Condition symbol -> (expression, schema it is evaluated against).
  /// The condition's argument list variables are concatenated into one row
  /// matching the schema.
  struct Condition {
    ExprPtr expr;
    TableSchema schema;
  };
  std::map<std::string, Condition> conditions;

  /// Function symbol -> computation over the concatenated argument values.
  std::map<std::string,
           std::function<Result<Value>(const std::vector<Value>&)>>
      functions;
};

/// Evaluates a non-recursive rule set bottom-up (stratified by head
/// predicate) and returns the derived relations by symbol. Used by tests to
/// cross-validate the native mapping kernels against the paper's rule sets
/// on small universes.
Result<std::map<std::string, Table>> Evaluate(const RuleSet& rules,
                                              const EvalInput& input);

}  // namespace datalog
}  // namespace inverda

#endif  // INVERDA_DATALOG_EVALUATOR_H_
