#ifndef INVERDA_DATALOG_RULE_H_
#define INVERDA_DATALOG_RULE_H_

#include <set>
#include <string>
#include <vector>

namespace inverda {
namespace datalog {

/// A term in an atom: a named variable or the anonymous wildcard `_`.
///
/// Following the paper's notation, lowercase variables stand for single
/// attributes (p, t, b, ...) and uppercase variables for attribute lists
/// (A, B, A'). The symbolic machinery (composition, Lemmas 1-5) treats both
/// uniformly; widths only matter when rules are grounded against concrete
/// schemas (evaluation and SQL generation).
struct Term {
  std::string name;

  static Term Var(std::string name) { return Term{std::move(name)}; }
  static Term Wildcard() { return Term{"_"}; }

  bool is_wildcard() const { return name == "_"; }
  bool operator==(const Term& other) const { return name == other.name; }
  bool operator<(const Term& other) const { return name < other.name; }
};

/// The kinds of body literals appearing in the gamma rule sets.
enum class LiteralKind {
  kRelation,   ///< [¬] R(p, A, ...)
  kCondition,  ///< [¬] cR(A)
  kFunction,   ///< b = f(A)        (never negated)
  kCompare,    ///< A = A' or A ≠ A'
};

/// One literal. The representation is a tagged union flattened into one
/// struct; unused fields are empty.
struct Literal {
  LiteralKind kind = LiteralKind::kRelation;
  bool negated = false;

  /// kRelation: predicate symbol; kCondition: condition symbol;
  /// kFunction: function symbol.
  std::string symbol;

  /// kRelation/kCondition: the argument terms. kFunction: the function's
  /// input terms. kCompare: exactly two terms.
  std::vector<Term> args;

  /// kFunction only: the output term (lhs of `out = f(args)`).
  Term out = Term::Wildcard();

  /// kCompare only: true for equality (=), false for inequality (≠).
  bool compare_equal = true;

  static Literal Relation(std::string predicate, std::vector<Term> args,
                          bool negated = false);
  static Literal Condition(std::string condition, std::vector<Term> args,
                           bool negated = false);
  static Literal Function(Term out, std::string function,
                          std::vector<Term> args);
  static Literal Equal(Term lhs, Term rhs);
  static Literal NotEqual(Term lhs, Term rhs);

  /// The same literal with flipped polarity (kRelation/kCondition flip
  /// `negated`; kCompare flips =/≠; kFunction is not negatable).
  Literal Negated() const;

  bool operator==(const Literal& other) const;

  /// Adds all variable names (excluding wildcards) to `out_vars`.
  void CollectVars(std::set<std::string>* out_vars) const;
};

/// The head of a rule: always a positive relation atom q(p, Y...).
struct Head {
  std::string predicate;
  std::vector<Term> args;

  bool operator==(const Head& other) const {
    return predicate == other.predicate && args == other.args;
  }
};

/// A Datalog rule H ← L1, ..., Ln.
struct Rule {
  Head head;
  std::vector<Literal> body;

  /// All variable names of head and body.
  std::set<std::string> Vars() const;

  bool operator==(const Rule& other) const {
    return head == other.head && body == other.body;
  }
};

/// An ordered set of rules defining one mapping function (γsrc or γtgt).
struct RuleSet {
  std::vector<Rule> rules;

  /// Predicates defined (appearing in some head).
  std::set<std::string> HeadPredicates() const;

  /// Relation predicates referenced in bodies.
  std::set<std::string> BodyPredicates() const;

  /// All rules whose head predicate is `predicate`.
  std::vector<const Rule*> RulesFor(const std::string& predicate) const;
};

/// Renames every variable `v` of `rule` to `prefix + v` (wildcards are left
/// alone). Used to rename rules apart before composition.
Rule RenameVarsApart(const Rule& rule, const std::string& prefix);

/// Applies the substitution `from -> to` to every term of the rule.
Rule SubstituteVar(const Rule& rule, const std::string& from,
                   const std::string& to);
Literal SubstituteVarInLiteral(const Literal& literal, const std::string& from,
                               const std::string& to);

}  // namespace datalog
}  // namespace inverda

#endif  // INVERDA_DATALOG_RULE_H_
