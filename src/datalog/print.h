#ifndef INVERDA_DATALOG_PRINT_H_
#define INVERDA_DATALOG_PRINT_H_

#include <string>

#include "datalog/rule.h"

namespace inverda {
namespace datalog {

/// Renders a literal / rule / rule set in the paper's notation, e.g.
/// "R(p, A) <- T(p, A), cR(A), not R-(p)".
std::string ToString(const Term& term);
std::string ToString(const Literal& literal);
std::string ToString(const Rule& rule);
std::string ToString(const RuleSet& rules);

}  // namespace datalog
}  // namespace inverda

#endif  // INVERDA_DATALOG_PRINT_H_
